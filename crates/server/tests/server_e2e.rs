//! End-to-end front-door tests over real sockets: handshake, SLO-tagged
//! request flow, admission backpressure, failure containment (malformed
//! frames, disconnects mid-request, seeded in-transaction panics), and
//! the engine-clean audit from the worker-recovery suite.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use preemptdb::mvcc::{Oid, Table};
use preemptdb::Engine;
use preemptdb_server::proto::{
    self, ErrCode, Frame, FrameReader, Op, SloClass, Status, PROTO_VERSION,
};
use preemptdb_server::{ClassLimits, Server, ServerConfig, ServerStats};

const ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;

fn test_config() -> ServerConfig {
    let mut cfg = ServerConfig::default().workers(2);
    cfg.accounts = ACCOUNTS;
    cfg.initial_balance = INITIAL_BALANCE;
    cfg
}

/// Minimal synchronous client: one frame out, one frame back.
struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects and completes the Hello handshake.
    fn connect(server: &Server, class: SloClass) -> Client {
        let mut c = Client::connect_raw(server);
        c.send(&Frame::Hello {
            version: PROTO_VERSION,
            class,
        });
        match c.recv() {
            Some(Frame::HelloOk { accounts, .. }) => assert!(accounts >= 2),
            other => panic!("expected HelloOk, got {other:?}"),
        }
        c
    }

    /// Connects without the handshake (for protocol-violation tests).
    fn connect_raw(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Client {
            stream,
            reader: FrameReader::new(),
        }
    }

    fn send(&mut self, frame: &Frame) {
        proto::write_frame(&mut self.stream, frame).expect("send frame");
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send bytes");
    }

    /// Next frame; `None` on clean hangup.
    fn recv(&mut self) -> Option<Frame> {
        proto::read_frame(&mut self.stream, &mut self.reader).expect("recv frame")
    }

    /// One full request round-trip.
    fn call(&mut self, id: u64, op: Op, a: u64, b: u64) -> Frame {
        self.send(&Frame::Req { id, op, a, b });
        self.recv().expect("reply before hangup")
    }

    /// Asserts an Ok response for `id` and returns its value.
    fn call_ok(&mut self, id: u64, op: Op, a: u64, b: u64) -> u64 {
        match self.call(id, op, a, b) {
            Frame::Resp {
                id: rid,
                status: Status::Ok,
                value,
                ..
            } => {
                assert_eq!(rid, id);
                value
            }
            other => panic!("expected Ok resp for {id}, got {other:?}"),
        }
    }
}

/// The worker-recovery audit, applied through the server's engine: no
/// leaked active-transaction slots, no orphans on any worker, and every
/// row still writable by a fresh read-modify-write transaction.
fn assert_engine_clean(engine: &Engine, table: &std::sync::Arc<Table>, oids: &[Oid], workers: usize) {
    assert_eq!(
        engine.registry().active_count(),
        0,
        "active-txn slots leaked"
    );
    for worker in 0..workers as u64 {
        let sweep = engine.orphan_sweep(worker);
        assert!(sweep.is_empty(), "worker {worker} left orphans: {sweep:?}");
    }
    let mut tx = engine.begin_si();
    for &oid in oids {
        let raw = tx.read(table, oid).expect("row visible");
        let v = u64::from_le_bytes(raw[..8].try_into().unwrap());
        tx.update(table, oid, &v.to_le_bytes()).expect("row writable");
    }
    tx.commit().expect("post-run write commits");
}

/// Sums the ledger directly through the engine.
fn ledger_total(engine: &Engine, table: &Table, oids: &[Oid]) -> u64 {
    let mut tx = engine.begin_si();
    let total = oids
        .iter()
        .map(|&oid| {
            let raw = tx.read(table, oid).expect("row visible");
            u64::from_le_bytes(raw[..8].try_into().unwrap())
        })
        .sum();
    tx.abort();
    total
}

/// Polls until all admitted requests have been answered.
fn wait_drained(server: &Server) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.in_flight == [0, 0] {
            return stats;
        }
        assert!(Instant::now() < deadline, "in-flight never drained: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn handshake_and_point_ops_round_trip() {
    let server = Server::start(test_config()).expect("start");
    let mut c = Client::connect(&server, SloClass::High);

    assert_eq!(c.call_ok(1, Op::Read, 0, 0), INITIAL_BALANCE);

    let deposits = 5u64;
    for i in 0..deposits {
        c.call_ok(2 + i, Op::Deposit, i, i + 1);
    }
    // Sequential single client: the sum sees exactly its own commits.
    let sum = c.call_ok(100, Op::Sum, 0, 0);
    assert_eq!(sum, ACCOUNTS * INITIAL_BALANCE + 2 * deposits);

    // Responses carry a nonzero latency from the server's cycle clock.
    let Frame::Resp { latency_cycles, .. } = c.call(101, Op::Read, 3, 0) else {
        panic!("expected resp");
    };
    assert!(latency_cycles > 0);
    assert!(server.clock_freq_hz() > 0);

    drop(c);
    let stats = server.shutdown();
    assert_eq!(stats.conns_accepted, 1);
    assert_eq!(stats.replies[SloClass::High.index()], deposits + 3);
    assert_eq!(stats.rejected, [0, 0]);
    assert_eq!(stats.committed_deposits, deposits);
}

#[test]
fn both_classes_share_the_ledger() {
    let server = Server::start(test_config()).expect("start");
    let mut high = Client::connect(&server, SloClass::High);
    let mut low = Client::connect(&server, SloClass::Low);

    high.call_ok(1, Op::Deposit, 0, 1);
    low.call_ok(1, Op::Deposit, 2, 3);
    let sum = low.call_ok(2, Op::Sum, 0, 0);
    assert_eq!(sum, ACCOUNTS * INITIAL_BALANCE + 2 * 2);

    drop(high);
    drop(low);
    let stats = server.shutdown();
    assert_eq!(stats.admitted[SloClass::High.index()], 1);
    assert_eq!(stats.admitted[SloClass::Low.index()], 2);
}

#[test]
fn request_before_hello_is_a_protocol_error() {
    let server = Server::start(test_config()).expect("start");

    let mut c = Client::connect_raw(&server);
    c.send(&Frame::Req {
        id: 1,
        op: Op::Read,
        a: 0,
        b: 0,
    });
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::ExpectedHello,
        })
    );
    assert_eq!(c.recv(), None, "server hangs up after the error");

    // The violation is counted and the server keeps serving.
    let mut ok = Client::connect(&server, SloClass::High);
    assert_eq!(ok.call_ok(1, Op::Read, 0, 0), INITIAL_BALANCE);
    drop(ok);
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn bad_version_and_double_hello_are_rejected() {
    let server = Server::start(test_config()).expect("start");

    let mut c = Client::connect_raw(&server);
    c.send(&Frame::Hello {
        version: PROTO_VERSION + 9,
        class: SloClass::Low,
    });
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::BadVersion,
        })
    );
    assert_eq!(c.recv(), None);

    let mut c = Client::connect(&server, SloClass::Low);
    c.send(&Frame::Hello {
        version: PROTO_VERSION,
        class: SloClass::Low,
    });
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::ExpectedHello,
        })
    );
    assert_eq!(c.recv(), None);

    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_not_panics() {
    let server = Server::start(test_config()).expect("start");

    // Unknown opcode behind a valid length prefix.
    let mut c = Client::connect(&server, SloClass::High);
    c.send_bytes(&1u32.to_le_bytes());
    c.send_bytes(&[0xFF]);
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::BadFrame,
        })
    );
    assert_eq!(c.recv(), None);

    // Oversized length prefix.
    let mut c = Client::connect(&server, SloClass::High);
    c.send_bytes(&(proto::MAX_FRAME as u32 + 1).to_le_bytes());
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::BadFrame,
        })
    );
    assert_eq!(c.recv(), None);

    // Bad frames never reached a worker; real work still flows.
    let mut ok = Client::connect(&server, SloClass::Low);
    ok.call_ok(1, Op::Deposit, 0, 1);
    drop(ok);
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 2);
    assert_eq!(stats.committed_deposits, 1);
}

#[test]
fn boom_without_chaos_flag_is_refused() {
    let server = Server::start(test_config()).expect("start");
    let mut c = Client::connect(&server, SloClass::High);
    c.send(&Frame::Req {
        id: 1,
        op: Op::Boom,
        a: 0,
        b: 0,
    });
    assert_eq!(
        c.recv(),
        Some(Frame::Error {
            code: ErrCode::ChaosDisabled,
        })
    );
    // Refusal is not a hangup: the connection still works.
    assert_eq!(c.call_ok(2, Op::Read, 0, 0), INITIAL_BALANCE);
    drop(c);
    let stats = server.shutdown();
    assert_eq!(stats.admitted, [0, 1], "boom was refused before admission");
}

#[test]
fn saturated_class_gets_overloaded_frames() {
    let mut cfg = test_config();
    cfg.accounts = 512; // long scans so the cap is visibly held
    cfg.high = ClassLimits {
        tps: None,
        burst: 1,
        max_in_flight: 1,
    };
    let server = Server::start(cfg).expect("start");
    let mut c = Client::connect(&server, SloClass::High);

    // One write carrying four pipelined scans: with a cap of one, the
    // first is admitted and at least one of the rest bounces.
    let burst: Vec<u8> = (1..=4u64)
        .flat_map(|id| {
            Frame::Req {
                id,
                op: Op::Sum,
                a: 0,
                b: 0,
            }
            .encode()
        })
        .collect();
    c.send_bytes(&burst);

    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut answered = [false; 5];
    for _ in 0..4 {
        match c.recv().expect("reply") {
            Frame::Resp { id, .. } => {
                assert!(!answered[id as usize], "duplicate reply for {id}");
                answered[id as usize] = true;
                completed += 1;
            }
            Frame::Overloaded { id } => {
                assert!(!answered[id as usize], "duplicate reply for {id}");
                answered[id as usize] = true;
                rejected += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(completed + rejected, 4, "every request answered exactly once");
    assert!(rejected >= 1, "the in-flight cap engaged");

    drop(c);
    let stats = server.shutdown();
    assert_eq!(stats.rejected[SloClass::High.index()], rejected);
    assert_eq!(stats.admitted[SloClass::High.index()], completed);
    assert_eq!(stats.in_flight, [0, 0]);
}

#[test]
fn disconnect_mid_request_leaves_engine_clean() {
    let cfg = test_config();
    let workers = cfg.workers;
    let server = Server::start(cfg).expect("start");

    // Eight clients fire pipelined work and slam the door without
    // reading a single reply.
    for round in 0..8u64 {
        let mut c = Client::connect(&server, SloClass::High);
        let burst: Vec<u8> = (0..6u64)
            .flat_map(|i| {
                let op = if i % 3 == 2 { Op::Sum } else { Op::Deposit };
                Frame::Req {
                    id: i,
                    op,
                    a: round * 7 + i,
                    b: round * 11 + i + 1,
                }
                .encode()
            })
            .collect();
        c.send_bytes(&burst);
        drop(c); // disconnect with every request in flight
    }

    // A surviving client keeps the server honest throughout.
    let mut survivor = Client::connect(&server, SloClass::Low);
    survivor.call_ok(1, Op::Deposit, 1, 2);

    let stats = wait_drained(&server);
    // Every admitted request ran to completion against the dead sockets.
    assert_eq!(
        stats.replies[0] + stats.replies[1],
        stats.admitted[0] + stats.admitted[1]
    );

    // Conservation: the ledger grew by exactly two per committed deposit.
    let engine = server.engine().clone();
    let (table, oids) = server.accounts();
    assert_eq!(
        ledger_total(&engine, &table, &oids),
        ACCOUNTS * INITIAL_BALANCE + 2 * stats.committed_deposits
    );
    assert_engine_clean(&engine, &table, &oids, workers);

    // And the survivor still gets service after the carnage.
    survivor.call_ok(2, Op::Read, 0, 0);
    drop(survivor);
    server.shutdown();
}

#[test]
fn chaos_panics_are_contained_under_live_load() {
    let mut cfg = test_config();
    cfg.enable_chaos_ops = true;
    let workers = cfg.workers;
    let server = Server::start(cfg).expect("start");

    // A Boom panics inside the worker; the firewall contains it and the
    // reply guard turns it into a typed Panicked response.
    let mut c = Client::connect(&server, SloClass::High);
    match c.call(1, Op::Boom, 0, 0) {
        Frame::Resp {
            id: 1,
            status: Status::Panicked,
            ..
        } => {}
        other => panic!("expected Panicked resp, got {other:?}"),
    }
    // The pool survived: the very next transaction commits.
    c.call_ok(2, Op::Deposit, 0, 1);

    // Mixed chaos: booms interleaved with deposits across classes, some
    // connections killed mid-request.
    for round in 0..6u64 {
        let class = if round % 2 == 0 {
            SloClass::High
        } else {
            SloClass::Low
        };
        let mut victim = Client::connect(&server, class);
        let burst: Vec<u8> = (0..4u64)
            .flat_map(|i| {
                let op = if i % 2 == 0 { Op::Boom } else { Op::Deposit };
                Frame::Req {
                    id: i,
                    op,
                    a: round + i,
                    b: round + i + 3,
                }
                .encode()
            })
            .collect();
        victim.send_bytes(&burst);
        drop(victim); // hang up with panics still in flight
    }

    let stats = wait_drained(&server);
    assert_eq!(
        stats.replies[0] + stats.replies[1],
        stats.admitted[0] + stats.admitted[1],
        "every admitted request produced exactly one reply, panics included"
    );

    // Zero lost or duplicated commits, no leaked slots, no orphans.
    let engine = server.engine().clone();
    let (table, oids) = server.accounts();
    assert_eq!(
        ledger_total(&engine, &table, &oids),
        ACCOUNTS * INITIAL_BALANCE + 2 * stats.committed_deposits
    );
    assert_engine_clean(&engine, &table, &oids, workers);

    // The front door is still open.
    let mut after = Client::connect(&server, SloClass::High);
    assert!(after.call_ok(1, Op::Sum, 0, 0) >= ACCOUNTS * INITIAL_BALANCE);
    drop(after);
    server.shutdown();
}
