//! Wire-protocol properties: frames reassemble across arbitrary read
//! boundaries, and hostile bytes produce typed errors — never panics.

use preemptdb_server::proto::{
    DecodeError, ErrCode, Frame, FrameReader, Op, SloClass, Status, MAX_FRAME,
};
use proptest::prelude::*;

fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), 0u8..2).prop_map(|(version, c)| Frame::Hello {
            version,
            class: SloClass::from_u8(c).unwrap(),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(freq_hz, accounts)| Frame::HelloOk {
            freq_hz,
            accounts,
        }),
        (any::<u64>(), 0u8..4, any::<u64>(), any::<u64>()).prop_map(|(id, op, a, b)| {
            Frame::Req {
                id,
                op: Op::from_u8(op).unwrap(),
                a,
                b,
            }
        }),
        (any::<u64>(), 0u8..3, any::<u64>(), any::<u64>()).prop_map(
            |(id, s, latency_cycles, value)| Frame::Resp {
                id,
                status: Status::from_u8(s).unwrap(),
                latency_cycles,
                value,
            }
        ),
        any::<u64>().prop_map(|id| Frame::Overloaded { id }),
        (1u8..5).prop_map(|c| Frame::Error {
            code: ErrCode::from_u8(c).unwrap(),
        }),
    ]
}

/// Drains every currently complete frame out of the reader.
fn drain(reader: &mut FrameReader, out: &mut Vec<Frame>) {
    while let Ok(Some(f)) = reader.next_frame() {
        out.push(f);
    }
}

proptest! {
    /// Any frame survives encode → single-push decode.
    #[test]
    fn round_trip_single_frame(frame in any_frame()) {
        let mut reader = FrameReader::new();
        reader.push(&frame.encode());
        prop_assert_eq!(reader.next_frame().unwrap(), Some(frame));
        prop_assert_eq!(reader.pending(), 0);
    }

    /// A pipelined stream of frames reassembles exactly no matter how
    /// the socket fragments it — including splits inside the length
    /// prefix and splits inside payloads.
    #[test]
    fn round_trip_across_arbitrary_chunking(
        frames in prop::collection::vec(any_frame(), 1..12),
        chunks in prop::collection::vec(1usize..9, 1..128),
    ) {
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        for n in chunks {
            if pos >= bytes.len() {
                break;
            }
            let end = (pos + n).min(bytes.len());
            reader.push(&bytes[pos..end]);
            pos = end;
            drain(&mut reader, &mut decoded);
        }
        if pos < bytes.len() {
            reader.push(&bytes[pos..]);
            drain(&mut reader, &mut decoded);
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// Arbitrary bytes never panic the decoder: every outcome is a
    /// frame, a need-more-bytes, or a typed error.
    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        // Bounded: each Ok(Some) consumes >= 4 bytes; Err and Ok(None)
        // terminate.
        for _ in 0..=bytes.len() {
            match reader.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A corrupted length prefix beyond the bound is rejected before any
    /// buffering amplification.
    #[test]
    fn oversized_length_rejected(extra in 1usize..1_000_000) {
        let len = MAX_FRAME + extra;
        let mut reader = FrameReader::new();
        reader.push(&(len as u32).to_le_bytes());
        prop_assert_eq!(reader.next_frame(), Err(DecodeError::Oversized { len }));
    }
}

#[test]
fn truncated_frame_stays_pending() {
    let bytes = Frame::Overloaded { id: 7 }.encode();
    let mut reader = FrameReader::new();
    reader.push(&bytes[..bytes.len() - 1]);
    assert_eq!(reader.next_frame(), Ok(None));
    assert_eq!(reader.pending(), bytes.len() - 1);
    reader.push(&bytes[bytes.len() - 1..]);
    assert_eq!(reader.next_frame(), Ok(Some(Frame::Overloaded { id: 7 })));
}

#[test]
fn malformed_payloads_get_typed_errors() {
    // Unknown opcode.
    let mut reader = FrameReader::new();
    reader.push(&1u32.to_le_bytes());
    reader.push(&[0xFF]);
    assert_eq!(
        reader.next_frame(),
        Err(DecodeError::UnknownOp { op: 0xFF })
    );

    // Known opcode, wrong payload length (REQ wants 26 bytes).
    let mut reader = FrameReader::new();
    reader.push(&3u32.to_le_bytes());
    reader.push(&[3, 0, 0]);
    assert_eq!(
        reader.next_frame(),
        Err(DecodeError::BadLength {
            op: 3,
            got: 3,
            want: 26,
        })
    );

    // Right length, out-of-range field (REQ with op byte 200).
    let mut good = Frame::Req {
        id: 1,
        op: Op::Read,
        a: 0,
        b: 0,
    }
    .encode();
    good[4 + 1 + 8] = 200; // the op field, after len prefix + opcode + id
    let mut reader = FrameReader::new();
    reader.push(&good);
    assert_eq!(reader.next_frame(), Err(DecodeError::BadField { op: 3 }));

    // Empty payload.
    let mut reader = FrameReader::new();
    reader.push(&0u32.to_le_bytes());
    assert_eq!(reader.next_frame(), Err(DecodeError::Empty));
}
