//! # preempt-uintr
//!
//! A software user-interrupt (UINTR) layer with the hardware's programming
//! model (paper §2.3): senders post into a receiver's UPID through a UITT
//! (`senduipi` analog), the receiver is diverted into a registered handler,
//! `clui`/`stui` mask delivery, and handlers run to completion.
//!
//! **Substitution note** (DESIGN.md §1.1): this environment has no
//! UINTR-capable CPU/kernel, so *notification* is emulated — pending bits
//! are observed at engine preemption points (`preempt_context::runtime`)
//! rather than between arbitrary instructions. Everything above the
//! notification (masking, deferral inside non-preemptible regions, the
//! handler diverting into a real userspace context switch) is the paper's
//! mechanism, not a model of it. A kernel-mediated [`signal`] backend
//! reproduces the pre-UINTR baseline the paper motivates against, and
//! [`latency`] measures both.
//!
//! ```
//! use preempt_uintr::{UintrReceiver, UipiSender};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let fired = Rc::new(Cell::new(false));
//! let f = fired.clone();
//! let mut rx = UintrReceiver::new();
//! rx.register_handler(move |vector| {
//!     assert_eq!(vector, 7);
//!     f.set(true);
//! });
//!
//! let tx = UipiSender::new(rx.upid(), 7); // one UITT entry
//! tx.send();                              // senduipi
//! rx.poll();                              // next preemption point
//! assert!(fired.get());
//! ```

// Delivery code must not panic on fallible sends: every unwrap in
// non-test code has been audited away (typed `DeliveryError`s or
// `expect` with an invariant the caller upholds).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cycles;
pub mod latency;
pub mod receiver;
pub mod signal;
pub mod upid;

pub use receiver::{clui, stui, testui, DeliveryStats, MaskGuard, UintrReceiver};
pub use signal::{DeliveryError, SignalKicker};
pub use upid::{Uitt, UipiSender, Upid, NUM_VECTORS};
