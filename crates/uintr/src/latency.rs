//! Delivery-latency measurement (paper §6.1: "user interrupt delivery
//! latency between two POSIX threads is consistently lower than 1 µs").
//!
//! Two experiments, same structure: a sender thread posts an interrupt, a
//! receiver thread observes it, and we record the post→observation TSC
//! delta.
//!
//! * [`uintr_latency_samples`] — the user-level path: the receiver spins on
//!   preemption points (a relaxed load); observation is the handler firing.
//! * [`signal_latency_samples`] — the kernel-mediated path: the receiver
//!   spins likewise, but the *notification* travels through
//!   `pthread_kill`/the kernel's signal machinery; observation is the
//!   signal handler stamping arrival.
//!
//! On a multi-core host the user-level path lands well under 1 µs and the
//! signal path an order of magnitude above it — the paper's motivating gap.
//! On a single-core host both paths include scheduler noise; report
//! medians (the harness does).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::cycles::rdtsc;
use crate::receiver::UintrReceiver;
use crate::signal;
use crate::upid::UipiSender;

/// Measures `n` post→delivery latencies (in TSC cycles) for the emulated
/// user-interrupt path.
pub fn uintr_latency_samples(n: usize) -> Vec<u64> {
    let ready = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let arrival = Arc::new(AtomicU64::new(0));
    // Receiver thread: registers a handler that stamps arrival, then spins
    // on poll() — the tightest possible preemption-point loop.
    let (r, s, a) = (ready.clone(), stop.clone(), arrival.clone());
    let (upid_tx, upid_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut rx = UintrReceiver::new();
        let a2 = a.clone();
        rx.register_handler(move |_| {
            a2.store(rdtsc(), Ordering::Release);
        });
        upid_tx
            .send(rx.upid())
            .expect("main thread holds the receiving end for the whole run");
        r.store(true, Ordering::Release);
        while !s.load(Ordering::Acquire) {
            rx.poll();
            std::hint::spin_loop();
        }
    });
    let upid = upid_rx
        .recv()
        .expect("receiver thread sends its UPID before spinning");
    let sender = UipiSender::new(upid, 0);
    while !ready.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        arrival.store(0, Ordering::Release);
        let t0 = rdtsc();
        sender.send();
        // Wait for the handler to stamp arrival.
        let mut t1;
        loop {
            t1 = arrival.load(Ordering::Acquire);
            if t1 != 0 {
                break;
            }
            std::thread::yield_now();
        }
        samples.push(t1.saturating_sub(t0));
    }
    stop.store(true, Ordering::Release);
    handle
        .join()
        .expect("measurement thread only exits via the stop flag");
    samples
}

/// Measures `n` kick→signal-handler latencies (in TSC cycles) for the
/// kernel-mediated path.
pub fn signal_latency_samples(n: usize) -> Vec<u64> {
    let stop = Arc::new(AtomicBool::new(false));
    let s = stop.clone();
    let (kick_tx, kick_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let upid = crate::upid::Upid::new();
        let kicker = signal::SignalKicker::for_current_thread(upid, 0)
            .expect("sigaction for the kick signal is installable");
        kick_tx
            .send(kicker)
            .expect("main thread holds the receiving end for the whole run");
        // Busy loop so the signal interrupts running userspace code, the
        // scenario the paper's preemption targets.
        while !s.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
    });
    let kicker = kick_rx
        .recv()
        .expect("target thread sends its kicker before spinning");

    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let before = signal::handled_count();
        let t0 = kicker
            .kick()
            .expect("measurement target thread is pinned alive until stop");
        loop {
            if signal::handled_count() != before {
                break;
            }
            std::thread::yield_now();
        }
        let t1 = signal::last_arrival_tsc();
        samples.push(t1.saturating_sub(t0));
    }
    stop.store(true, Ordering::Release);
    handle
        .join()
        .expect("measurement thread only exits via the stop flag");
    samples
}

/// Median of a sample set (destructive ordering; empty → 0).
pub fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mid = samples.len() / 2;
    *samples.select_nth_unstable(mid).1
}

/// Percentile (0.0–1.0) of a sample set (destructive ordering; empty → 0).
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    *samples.select_nth_unstable(idx).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uintr_latency_measures_something() {
        let mut s = uintr_latency_samples(50);
        assert_eq!(s.len(), 50);
        assert!(median(&mut s) > 0);
    }

    #[test]
    fn signal_latency_measures_something() {
        let mut s = signal_latency_samples(20);
        assert_eq!(s.len(), 20);
        assert!(median(&mut s) > 0);
    }

    #[test]
    fn median_and_percentile_basics() {
        let mut v = vec![5, 1, 9, 3, 7];
        assert_eq!(median(&mut v), 5);
        let mut v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&mut v, 0.0), 10);
        assert_eq!(percentile(&mut v, 1.0), 40);
        assert_eq!(median(&mut []), 0);
    }
}
