//! Receiver side: UIF masking, handler registration, and the delivery path.
//!
//! Hardware behaviour being modeled (paper §2.3):
//!
//! * the receiving thread is diverted to its registered handler when an
//!   interrupt is pending and the *user-interrupt flag* (UIF) permits;
//! * delivery disables further user interrupts until the handler returns
//!   (`uiret`), so handlers run to completion without re-entry;
//! * `clui`/`stui` let code mask/unmask delivery explicitly (the paper's
//!   Algorithm 2 uses them around the active context switch).
//!
//! In this reproduction delivery happens at preemption points: the worker's
//! runtime hook calls [`UintrReceiver::poll`], whose fast path is a single
//! relaxed load. The UIF is **context-local** (a [`ClsCell`]): when the
//! handler switches to another transaction context, that context runs with
//! its own (enabled) flag — exactly the effect of the paper's handler
//! completing via `uiret` on the *new* context's prepared uintr frame.

use std::cell::Cell;
use std::sync::Arc;

use preempt_context::cls::ClsCell;
use preempt_context::{switch_in_progress, tcb};

use crate::cycles::rdtsc;
use crate::upid::{Upid, NUM_VECTORS};

/// Context-local UIF: `true` = delivery disabled (after `clui`).
static UIF_DISABLED: ClsCell<bool> = ClsCell::new(|| false);

/// Disables user-interrupt delivery for the current context (`clui`).
#[inline]
pub fn clui() {
    UIF_DISABLED.set(true);
}

/// Enables user-interrupt delivery for the current context (`stui`).
#[inline]
pub fn stui() {
    UIF_DISABLED.set(false);
}

/// Tests the UIF (`testui`): returns `true` if delivery is enabled.
#[inline]
pub fn testui() -> bool {
    !UIF_DISABLED.get()
}

/// RAII form of `clui`/`stui` for masked critical sections.
#[must_use = "delivery stays masked only while the guard lives"]
pub struct MaskGuard {
    was_disabled: bool,
}

impl MaskGuard {
    pub fn new() -> MaskGuard {
        let was_disabled = UIF_DISABLED.replace(true);
        MaskGuard { was_disabled }
    }
}

impl Default for MaskGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MaskGuard {
    fn drop(&mut self) {
        UIF_DISABLED.set(self.was_disabled);
    }
}

/// Receiver-side delivery statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeliveryStats {
    /// Handler invocations (vectors delivered).
    pub delivered: u64,
    /// Delivery attempts deferred by UIF / non-preemptible region / switch
    /// window.
    pub deferred: u64,
    /// Sum of post→delivery TSC deltas (latency numerator).
    pub latency_cycles_sum: u64,
    /// Max post→delivery TSC delta observed.
    pub latency_cycles_max: u64,
}

/// The per-worker-thread receiving endpoint: owns the UPID and the
/// registered user-interrupt handler.
///
/// Not `Sync`: it lives on its worker thread. Senders interact only with
/// the shared [`Upid`] (get one via [`UintrReceiver::upid`]).
pub struct UintrReceiver {
    upid: Arc<Upid>,
    handler: Option<Box<dyn Fn(u8)>>,
    stats: Cell<DeliveryStats>,
}

impl UintrReceiver {
    /// Creates a receiver with a fresh UPID and no handler.
    pub fn new() -> UintrReceiver {
        UintrReceiver {
            upid: Upid::new(),
            handler: None,
            stats: Cell::new(DeliveryStats::default()),
        }
    }

    /// Registers the user-interrupt handler (at most once).
    pub fn register_handler(&mut self, handler: impl Fn(u8) + 'static) {
        assert!(self.handler.is_none(), "handler already registered");
        self.handler = Some(Box::new(handler));
    }

    /// The shared descriptor senders post into.
    pub fn upid(&self) -> Arc<Upid> {
        self.upid.clone()
    }

    /// Cumulative delivery statistics.
    pub fn stats(&self) -> DeliveryStats {
        self.stats.get()
    }

    /// Average post→delivery latency in TSC cycles, if any were delivered.
    pub fn mean_delivery_latency_cycles(&self) -> Option<u64> {
        let s = self.stats.get();
        (s.delivered > 0).then(|| s.latency_cycles_sum / s.delivered)
    }

    /// The delivery path, invoked at every preemption point.
    ///
    /// Returns the number of vectors delivered (0 on the fast path).
    ///
    /// Deferral rules (the software analog of Algorithm 1 lines 2–6 plus
    /// the paper's §4.4 lock counter check): delivery is postponed —
    /// leaving the pending bits set and marking the TCB deferred — if
    ///
    /// 1. an active context switch is in flight on this thread,
    /// 2. the current context is inside a non-preemptible region, or
    /// 3. the current context has masked delivery (`clui`).
    #[inline]
    pub fn poll(&self) -> u32 {
        if !self.upid.has_pending() {
            return 0;
        }
        self.deliver_pending()
    }

    /// Slow path of [`poll`], kept out of line so the fast path inlines
    /// into engine loops.
    #[cold]
    fn deliver_pending(&self) -> u32 {
        // Deferral checks mirror the paper's ordering: the hardware-level
        // switch window first, then the DBMS-level lock counter / UIF.
        if switch_in_progress() {
            self.note_deferred();
            return 0;
        }
        let blocked = tcb::with_current(|t| {
            if t.is_nonpreemptible() {
                t.note_deferred();
                true
            } else {
                false
            }
        });
        if blocked {
            self.bump_deferred();
            return 0;
        }
        if UIF_DISABLED.get() {
            self.note_deferred();
            return 0;
        }

        let bits = self.upid.take_pending();
        if bits == 0 {
            return 0; // raced with another poll
        }

        preempt_trace::emit(preempt_trace::TraceEvent::PendingNoticed { vectors: bits });
        preempt_metrics::counter_inc(preempt_metrics::Counter::UintrNoticed);

        // Account delivery latency against the most recent post.
        let now = rdtsc();
        let post = self.upid.last_post_tsc();
        let delta = now.saturating_sub(post);
        preempt_metrics::hist_record(preempt_metrics::FixedHist::DeliveryLatencyCycles, delta);

        // "The CPU disables user interrupt so that the handler can execute
        // to completion": mask for the duration of handling. The handler
        // typically context-switches away; the target context has its own
        // (enabled) UIF, and ours is restored when we eventually resume
        // and the guard drops.
        let _mask = MaskGuard::new();

        let handler = self
            .handler
            .as_ref()
            // preempt-lint: allow(handler-panic) — a delivery with no
            // registered handler is a worker-startup wiring bug; abort
            // is better than silently swallowing interrupts forever.
            .expect("user interrupt delivered with no handler registered");
        let mut delivered = 0u32;
        for vector in 0..NUM_VECTORS {
            if bits & (1u64 << vector) != 0 {
                preempt_trace::emit(preempt_trace::TraceEvent::HandlerEnter { vector });
                handler(vector);
                preempt_trace::emit(preempt_trace::TraceEvent::HandlerExit { vector });
                delivered += 1;
            }
        }

        let mut s = self.stats.get();
        s.delivered += delivered as u64;
        s.latency_cycles_sum += delta;
        s.latency_cycles_max = s.latency_cycles_max.max(delta);
        self.stats.set(s);
        preempt_metrics::counter_add(preempt_metrics::Counter::UintrDelivered, delivered as u64);
        delivered
    }

    fn note_deferred(&self) {
        tcb::with_current(|t| t.note_deferred());
        self.bump_deferred();
    }

    fn bump_deferred(&self) {
        let mut s = self.stats.get();
        s.deferred += 1;
        self.stats.set(s);
        preempt_metrics::counter_inc(preempt_metrics::Counter::UintrDeferred);
    }
}

impl Default for UintrReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for UintrReceiver {
    fn drop(&mut self) {
        self.upid.deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upid::UipiSender;
    use preempt_context::nonpreempt::NonPreemptGuard;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn receiver_with_log() -> (UintrReceiver, Rc<RefCell<Vec<u8>>>) {
        let log: Rc<RefCell<Vec<u8>>> = Rc::default();
        let l = log.clone();
        let mut rx = UintrReceiver::new();
        rx.register_handler(move |v| l.borrow_mut().push(v));
        (rx, log)
    }

    #[test]
    fn poll_without_pending_is_noop() {
        let (rx, log) = receiver_with_log();
        assert_eq!(rx.poll(), 0);
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn delivers_to_handler() {
        let (rx, log) = receiver_with_log();
        let tx = UipiSender::new(rx.upid(), 2);
        tx.send();
        assert_eq!(rx.poll(), 1);
        assert_eq!(*log.borrow(), vec![2]);
        assert_eq!(rx.stats().delivered, 1);
    }

    #[test]
    fn multiple_vectors_delivered_in_order() {
        let (rx, log) = receiver_with_log();
        UipiSender::new(rx.upid(), 9).send();
        UipiSender::new(rx.upid(), 1).send();
        UipiSender::new(rx.upid(), 33).send();
        assert_eq!(rx.poll(), 3);
        assert_eq!(*log.borrow(), vec![1, 9, 33]);
    }

    #[test]
    fn clui_defers_stui_redelivers() {
        let (rx, log) = receiver_with_log();
        let tx = UipiSender::new(rx.upid(), 0);
        clui();
        tx.send();
        assert_eq!(rx.poll(), 0, "masked: deferred");
        assert_eq!(rx.stats().deferred, 1);
        assert!(log.borrow().is_empty());
        stui();
        assert_eq!(rx.poll(), 1, "unmasked: delivered");
        assert_eq!(*log.borrow(), vec![0]);
    }

    #[test]
    fn mask_guard_restores_previous_state() {
        assert!(testui());
        {
            let _g = MaskGuard::new();
            assert!(!testui());
            {
                let _g2 = MaskGuard::new();
                assert!(!testui());
            }
            assert!(!testui(), "inner guard restores to outer masked state");
        }
        assert!(testui());
    }

    #[test]
    fn nonpreemptible_region_defers_delivery() {
        let (rx, log) = receiver_with_log();
        let tx = UipiSender::new(rx.upid(), 4);
        {
            let _np = NonPreemptGuard::enter();
            tx.send();
            assert_eq!(rx.poll(), 0);
            assert!(log.borrow().is_empty());
            assert!(preempt_context::tcb::with_current(|t| t.has_deferred()));
        }
        assert_eq!(rx.poll(), 1);
        assert_eq!(*log.borrow(), vec![4]);
    }

    #[test]
    fn switch_window_defers_delivery() {
        let (rx, log) = receiver_with_log();
        let tx = UipiSender::new(rx.upid(), 5);
        tx.send();
        preempt_context::switch::set_switch_in_progress(true);
        assert_eq!(rx.poll(), 0, "mid-switch: deferred (ip-check analog)");
        preempt_context::switch::set_switch_in_progress(false);
        assert_eq!(rx.poll(), 1);
        assert_eq!(*log.borrow(), vec![5]);
    }

    #[test]
    fn handler_is_not_reentered() {
        // A handler that polls again must not recurse: UIF is masked for
        // the duration of handling.
        struct State {
            rx: Cell<*const UintrReceiver>,
            depth: Cell<u32>,
            max_depth: Cell<u32>,
        }
        let state = Rc::new(State {
            rx: Cell::new(std::ptr::null()),
            depth: Cell::new(0),
            max_depth: Cell::new(0),
        });
        let mut rx = Box::new(UintrReceiver::new());
        let s = state.clone();
        rx.register_handler(move |_| {
            s.depth.set(s.depth.get() + 1);
            s.max_depth.set(s.max_depth.get().max(s.depth.get()));
            // Another interrupt arrives *during* handling...
            unsafe {
                (*s.rx.get()).upid().post(0);
                // ...and a nested poll must defer, not recurse.
                (*s.rx.get()).poll();
            }
            s.depth.set(s.depth.get() - 1);
        });
        state.rx.set(&*rx as *const UintrReceiver);

        rx.upid().post(0);
        rx.poll();
        assert_eq!(state.max_depth.get(), 1, "no handler re-entry");
        // The interrupt posted during handling is still pending and is
        // delivered at the next point.
        assert_eq!(rx.poll(), 1);
    }

    #[test]
    fn delivery_latency_is_recorded() {
        let (rx, _log) = receiver_with_log();
        UipiSender::new(rx.upid(), 0).send();
        rx.poll();
        assert!(rx.mean_delivery_latency_cycles().is_some());
    }

    #[test]
    fn cross_thread_delivery_smoke() {
        let (rx, log) = receiver_with_log();
        let tx = UipiSender::new(rx.upid(), 7);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                tx.send();
            }
        });
        // Poll until the sender thread finishes; edge-triggered semantics
        // mean we may see 1..=100 deliveries, all of vector 7.
        h.join().unwrap();
        while rx.poll() > 0 {}
        assert!(!log.borrow().is_empty());
        assert!(log.borrow().iter().all(|&v| v == 7));
    }
}
