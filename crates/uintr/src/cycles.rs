//! Cycle-accurate timing, the `rdtscp` the paper's starvation monitor uses.
//!
//! The starvation-prevention policy (paper §5, Figure 7) measures the share
//! of CPU cycles consumed by high-priority transactions with `rdtscp`.
//! This module wraps the TSC and calibrates it against the OS clock so
//! cycle counts can be reported in nanoseconds.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Reads the time-stamp counter (serialized like `rdtscp`).
#[inline]
pub fn rdtsc() -> u64 {
    // SAFETY: `_rdtsc` has no preconditions on x86_64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Estimated TSC frequency in Hz, calibrated once on first use.
pub fn tsc_hz() -> u64 {
    static HZ: OnceLock<u64> = OnceLock::new();
    *HZ.get_or_init(|| {
        // Short calibration: good to ~1% which is plenty for reporting.
        let t0 = Instant::now();
        let c0 = rdtsc();
        while t0.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        let cycles = rdtsc().wrapping_sub(c0);
        let nanos = t0.elapsed().as_nanos() as u64;
        (cycles as u128 * 1_000_000_000u128 / nanos as u128) as u64
    })
}

/// Converts a TSC delta to nanoseconds using the calibrated frequency.
pub fn cycles_to_ns(cycles: u64) -> u64 {
    (cycles as u128 * 1_000_000_000u128 / tsc_hz() as u128) as u64
}

/// Converts nanoseconds to TSC cycles.
pub fn ns_to_cycles(ns: u64) -> u64 {
    (ns as u128 * tsc_hz() as u128 / 1_000_000_000u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_is_monotonic_nondecreasing_locally() {
        let a = rdtsc();
        let b = rdtsc();
        assert!(b >= a);
    }

    #[test]
    fn calibration_is_sane() {
        let hz = tsc_hz();
        // Any x86_64 of the last two decades: 0.5 GHz .. 6 GHz.
        assert!(hz > 500_000_000, "tsc {hz} Hz too low");
        assert!(hz < 6_000_000_000, "tsc {hz} Hz too high");
    }

    #[test]
    fn conversions_round_trip_approximately() {
        let ns = 1_000_000; // 1 ms
        let cycles = ns_to_cycles(ns);
        let back = cycles_to_ns(cycles);
        assert!((back as i64 - ns as i64).unsigned_abs() < 1_000);
    }
}
