//! User posted-interrupt descriptors (UPID) and sender tables (UITT).
//!
//! Hardware UINTR posts interrupts by setting a bit in the receiver's UPID
//! and (optionally) notifying the target CPU; the sender finds the UPID
//! through its user-interrupt target table (UITT) and the `senduipi`
//! instruction's operand is an index into that table (paper §2.3).
//!
//! This module reproduces the model in software: a [`Upid`] is a shared
//! pending-bit word, a [`UipiSender`] posts bits into it with a release
//! store, and a [`Uitt`] is the per-sender table indexed by `senduipi`.
//! Delivery to the receiving code happens when the receiver's thread
//! executes a preemption point (see `receiver.rs` and DESIGN.md §1.1).

// Under `--cfg loom` the pending/active words become loom atomics so the
// model checker in tests/loom.rs can exhaust every interleaving of the
// post/take/repost protocol. Production builds keep std atomics.
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::cycles::rdtsc;

/// Number of user-interrupt vectors, matching the hardware's UIRR width.
pub const NUM_VECTORS: u8 = 64;

/// User posted-interrupt descriptor: one per receiver thread.
///
/// Sharable across threads; senders hold `Arc<Upid>` through their UITT.
#[derive(Debug)]
pub struct Upid {
    /// Posted-interrupt requests, one bit per vector (the UIRR analog).
    pending: AtomicU64,
    /// Suppress-notification analog: `false` once the receiver tears down.
    active: AtomicBool,
    /// TSC stamp of the most recent post, for delivery-latency accounting.
    last_post_tsc: AtomicU64,
    /// Total posts (senduipi executions) targeting this descriptor.
    posts: AtomicU64,
    /// Owning worker id for trace attribution (`u16::MAX` = unattributed).
    owner: AtomicU64,
}

impl Upid {
    pub fn new() -> Arc<Upid> {
        Arc::new(Upid {
            pending: AtomicU64::new(0),
            active: AtomicBool::new(true),
            last_post_tsc: AtomicU64::new(0),
            posts: AtomicU64::new(0),
            owner: AtomicU64::new(u64::from(u16::MAX)),
        })
    }

    /// Tags this descriptor with the receiving worker's id so that trace
    /// records of sends can name their target.
    pub fn set_owner(&self, worker: u16) {
        self.owner.store(u64::from(worker), Ordering::Relaxed);
    }

    /// The receiving worker's id (`u16::MAX` until [`Upid::set_owner`]).
    pub fn owner(&self) -> u16 {
        self.owner.load(Ordering::Relaxed) as u16
    }

    /// Posts vector `vector` (the core of `senduipi`). Returns `false` if
    /// the receiver has shut down.
    #[inline]
    pub fn post(&self, vector: u8) -> bool {
        debug_assert!(vector < NUM_VECTORS);
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        self.last_post_tsc.store(rdtsc(), Ordering::Relaxed);
        // Release pairs with the Acquire swap in the receiver so that
        // everything the sender wrote (e.g. the enqueued transaction)
        // happens-before the handler observing the vector.
        self.pending.fetch_or(1u64 << vector, Ordering::Release);
        self.posts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Receiver-side: atomically takes all pending vectors (returns the
    /// bitmask and clears it). Acquire pairs with [`Upid::post`].
    #[inline]
    pub fn take_pending(&self) -> u64 {
        // Fast path for the overwhelmingly common empty case: a single
        // relaxed load — this runs at *every* preemption point.
        if self.pending.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        self.pending.swap(0, Ordering::Acquire)
    }

    /// Whether any vector is pending (no side effects).
    #[inline]
    pub fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Relaxed) != 0
    }

    /// Re-posts vectors that could not be delivered (deferral by a
    /// non-preemptible region or masked UIF).
    #[inline]
    pub fn repost(&self, vectors: u64) {
        self.pending.fetch_or(vectors, Ordering::Release);
    }

    /// Marks the receiver as gone; subsequent posts fail.
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }

    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// TSC stamp of the most recent post.
    pub fn last_post_tsc(&self) -> u64 {
        self.last_post_tsc.load(Ordering::Relaxed)
    }

    /// Total number of posts so far.
    pub fn posts(&self) -> u64 {
        self.posts.load(Ordering::Relaxed)
    }
}

/// A sending endpoint: one UITT entry (target UPID + vector).
#[derive(Clone, Debug)]
pub struct UipiSender {
    upid: Arc<Upid>,
    vector: u8,
}

impl UipiSender {
    pub fn new(upid: Arc<Upid>, vector: u8) -> UipiSender {
        assert!(vector < NUM_VECTORS, "vector out of range");
        UipiSender { upid, vector }
    }

    /// Sends the user interrupt (the `senduipi` analog). Returns `false`
    /// if the receiver has shut down.
    ///
    /// Consults the fault injector when a plan is installed: a dropped
    /// send reports success (the sender cannot observe a lost
    /// notification — re-delivery is the scheduler watchdog's job), a
    /// duplicated send posts twice (coalesced by the edge-triggered
    /// pending word), and a spurious send posts an extra unrelated
    /// vector. Injected delays are only meaningful under the simulator's
    /// timed sender; here they deliver immediately.
    #[inline]
    pub fn send(&self) -> bool {
        use preempt_faults::SendFault;
        preempt_trace::emit(preempt_trace::TraceEvent::UipiSent {
            target: self.upid.owner(),
            vector: self.vector,
        });
        match preempt_faults::on_uipi_send() {
            SendFault::Deliver | SendFault::Delay(_) => self.upid.post(self.vector),
            SendFault::Drop => self.upid.is_active(),
            SendFault::Duplicate => {
                let ok = self.upid.post(self.vector);
                self.upid.post(self.vector);
                ok
            }
            SendFault::Spurious(v) => {
                let ok = self.upid.post(self.vector);
                self.upid.post(v % NUM_VECTORS);
                ok
            }
        }
    }

    /// The target descriptor (for tests and stats).
    pub fn upid(&self) -> &Arc<Upid> {
        &self.upid
    }

    pub fn vector(&self) -> u8 {
        self.vector
    }
}

/// User-interrupt target table: the sender-side register file of
/// [`UipiSender`] entries, indexed like the operand of `senduipi`.
#[derive(Default, Debug)]
pub struct Uitt {
    entries: Vec<UipiSender>,
}

impl Uitt {
    pub fn new() -> Uitt {
        Uitt::default()
    }

    /// Registers a target; returns its UITT index.
    pub fn register(&mut self, upid: Arc<Upid>, vector: u8) -> usize {
        self.entries.push(UipiSender::new(upid, vector));
        self.entries.len() - 1
    }

    /// `senduipi(index)`: posts the interrupt described by entry `index`.
    #[inline]
    pub fn senduipi(&self, index: usize) -> bool {
        self.entries[index].send()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entry(&self, index: usize) -> &UipiSender {
        &self.entries[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_take_round_trip() {
        let upid = Upid::new();
        assert_eq!(upid.take_pending(), 0);
        assert!(upid.post(3));
        assert!(upid.post(10));
        assert!(upid.has_pending());
        assert_eq!(upid.take_pending(), (1 << 3) | (1 << 10));
        assert_eq!(upid.take_pending(), 0, "cleared after take");
    }

    #[test]
    fn duplicate_posts_coalesce() {
        let upid = Upid::new();
        upid.post(5);
        upid.post(5);
        upid.post(5);
        assert_eq!(upid.posts(), 3);
        assert_eq!(upid.take_pending(), 1 << 5, "edge-triggered: one bit");
    }

    #[test]
    fn deactivated_receiver_rejects_posts() {
        let upid = Upid::new();
        upid.deactivate();
        assert!(!upid.post(0));
        assert_eq!(upid.take_pending(), 0);
    }

    #[test]
    fn repost_restores_bits() {
        let upid = Upid::new();
        upid.post(1);
        let taken = upid.take_pending();
        upid.repost(taken);
        assert_eq!(upid.take_pending(), 1 << 1);
    }

    #[test]
    fn uitt_indexes_targets() {
        let a = Upid::new();
        let b = Upid::new();
        let mut uitt = Uitt::new();
        let ia = uitt.register(a.clone(), 0);
        let ib = uitt.register(b.clone(), 7);
        assert_eq!((ia, ib), (0, 1));
        uitt.senduipi(ib);
        assert_eq!(a.take_pending(), 0);
        assert_eq!(b.take_pending(), 1 << 7);
    }

    #[test]
    fn cross_thread_post_is_visible() {
        let upid = Upid::new();
        let sender = UipiSender::new(upid.clone(), 9);
        std::thread::spawn(move || sender.send()).join().unwrap();
        assert_eq!(upid.take_pending(), 1 << 9);
    }

    #[test]
    #[should_panic(expected = "vector out of range")]
    fn vector_range_checked() {
        let _ = UipiSender::new(Upid::new(), 64);
    }
}
