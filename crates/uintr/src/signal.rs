//! Kernel-mediated delivery baseline: POSIX signals.
//!
//! The paper's motivation (§1, §2.3): before UINTR, the only way to divert
//! a running thread was a kernel-mediated software interrupt (a signal),
//! whose delivery latency is an order of magnitude worse and which is why
//! "the evolution of preemption in database engines has been slow". This
//! module provides that baseline so the workspace can *measure* the claim
//! (experiment `uintr_latency`, DESIGN.md §4):
//!
//! * [`SignalKicker`] — posts the pending bit into the same [`Upid`] as a
//!   regular sender, then `pthread_kill`s the receiver so a thread blocked
//!   in a syscall wakes up (EINTR) — the "notification" half hardware UINTR
//!   performs with an IPI.
//! * The installed handler is async-signal-safe: it only stamps arrival
//!   time and a counter into process-global atomics.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use crate::cycles::rdtsc;
use crate::upid::Upid;

/// Signal used for kicks. SIGURG is ignored by default and rarely used,
/// which is why runtimes (e.g. Go's preemption) pick it.
pub const KICK_SIGNAL: libc::c_int = libc::SIGURG;

/// TSC stamp written by the signal handler on arrival.
static LAST_ARRIVAL_TSC: AtomicU64 = AtomicU64::new(0);
/// Number of kick signals handled process-wide.
static HANDLED: AtomicU64 = AtomicU64::new(0);

extern "C" fn kick_handler(_sig: libc::c_int) {
    // Async-signal-safe: plain atomic stores only.
    LAST_ARRIVAL_TSC.store(rdtsc(), Ordering::Release);
    HANDLED.fetch_add(1, Ordering::Relaxed);
}

/// Installs the process-wide kick handler (idempotent).
pub fn install_handler() -> io::Result<()> {
    static INSTALLED: OnceLock<io::Result<()>> = OnceLock::new();
    INSTALLED
        .get_or_init(|| {
            // SAFETY: sigaction with a valid handler; sa_mask zeroed.
            unsafe {
                let mut sa: libc::sigaction = std::mem::zeroed();
                sa.sa_sigaction = kick_handler as *const () as usize;
                sa.sa_flags = libc::SA_RESTART;
                libc::sigemptyset(&mut sa.sa_mask);
                if libc::sigaction(KICK_SIGNAL, &sa, std::ptr::null_mut()) != 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            Ok(())
        })
        .as_ref()
        .map(|_| ())
        .map_err(|e| io::Error::new(e.kind(), e.to_string()))
}

/// TSC stamp of the most recent handled kick (0 if none yet).
pub fn last_arrival_tsc() -> u64 {
    LAST_ARRIVAL_TSC.load(Ordering::Acquire)
}

/// Total kicks handled by this process.
pub fn handled_count() -> u64 {
    HANDLED.load(Ordering::Relaxed)
}

/// A kernel-mediated sending endpoint: posts into the UPID like a normal
/// sender, then signals the receiver thread.
pub struct SignalKicker {
    upid: Arc<Upid>,
    vector: u8,
    target: libc::pthread_t,
}

// SAFETY: pthread_t is a thread handle valid process-wide; pthread_kill
// from any thread is allowed.
unsafe impl Send for SignalKicker {}
unsafe impl Sync for SignalKicker {}

impl SignalKicker {
    /// Creates a kicker targeting the *calling* thread. Call this on the
    /// receiver thread, then hand the kicker to the scheduler.
    pub fn for_current_thread(upid: Arc<Upid>, vector: u8) -> io::Result<SignalKicker> {
        install_handler()?;
        // SAFETY: pthread_self has no preconditions.
        let target = unsafe { libc::pthread_self() };
        Ok(SignalKicker {
            upid,
            vector,
            target,
        })
    }

    /// Posts the vector and signals the receiver thread. Returns the TSC
    /// stamp taken just before `pthread_kill`, for latency measurement.
    pub fn kick(&self) -> io::Result<u64> {
        self.upid.post(self.vector);
        let t = rdtsc();
        // SAFETY: target is a live pthread handle (receiver's lifetime is
        // managed by the runtime that created the kicker).
        let rc = unsafe { libc::pthread_kill(self.target, KICK_SIGNAL) };
        if rc != 0 {
            return Err(io::Error::from_raw_os_error(rc));
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn handler_installs_idempotently() {
        install_handler().unwrap();
        install_handler().unwrap();
    }

    #[test]
    fn kick_posts_bit_and_delivers_signal() {
        let upid = Upid::new();
        let (tx, rx) = mpsc::channel::<SignalKicker>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let u = upid.clone();
        let handle = std::thread::spawn(move || {
            let kicker = SignalKicker::for_current_thread(u, 3).unwrap();
            tx.send(kicker).unwrap();
            // Stay alive until the kick arrived so pthread_kill has a
            // valid target.
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        });
        let kicker = rx.recv().unwrap();
        let before = handled_count();
        kicker.kick().unwrap();
        // The signal is asynchronous; wait briefly for the handler.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handled_count() == before && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(handled_count() > before, "signal handler ran");
        assert_eq!(upid.take_pending(), 1 << 3, "pending bit was posted");
        done_tx.send(()).unwrap();
        handle.join().unwrap();
    }
}
