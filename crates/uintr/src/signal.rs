//! Kernel-mediated delivery baseline: POSIX signals.
//!
//! The paper's motivation (§1, §2.3): before UINTR, the only way to divert
//! a running thread was a kernel-mediated software interrupt (a signal),
//! whose delivery latency is an order of magnitude worse and which is why
//! "the evolution of preemption in database engines has been slow". This
//! module provides that baseline so the workspace can *measure* the claim
//! (experiment `uintr_latency`, DESIGN.md §4):
//!
//! * [`SignalKicker`] — posts the pending bit into the same [`Upid`] as a
//!   regular sender, then `pthread_kill`s the receiver so a thread blocked
//!   in a syscall wakes up (EINTR) — the "notification" half hardware UINTR
//!   performs with an IPI.
//! * The installed handler is async-signal-safe: it only stamps arrival
//!   time and a counter into process-global atomics.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use crate::cycles::rdtsc;
use crate::upid::Upid;

/// Signal used for kicks. SIGURG is ignored by default and rarely used,
/// which is why runtimes (e.g. Go's preemption) pick it.
pub const KICK_SIGNAL: libc::c_int = libc::SIGURG;

/// TSC stamp written by the signal handler on arrival.
static LAST_ARRIVAL_TSC: AtomicU64 = AtomicU64::new(0);
/// Number of kick signals handled process-wide.
static HANDLED: AtomicU64 = AtomicU64::new(0);

extern "C" fn kick_handler(_sig: libc::c_int) {
    // Async-signal-safe: plain atomic stores only.
    LAST_ARRIVAL_TSC.store(rdtsc(), Ordering::Release);
    HANDLED.fetch_add(1, Ordering::Relaxed);
}

/// Installs the process-wide kick handler (idempotent).
pub fn install_handler() -> io::Result<()> {
    static INSTALLED: OnceLock<io::Result<()>> = OnceLock::new();
    INSTALLED
        .get_or_init(|| {
            // SAFETY: sigaction with a valid handler; sa_mask zeroed.
            unsafe {
                let mut sa: libc::sigaction = std::mem::zeroed();
                sa.sa_sigaction = kick_handler as *const () as usize;
                sa.sa_flags = libc::SA_RESTART;
                libc::sigemptyset(&mut sa.sa_mask);
                if libc::sigaction(KICK_SIGNAL, &sa, std::ptr::null_mut()) != 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            Ok(())
        })
        .as_ref()
        .map(|_| ())
        .map_err(|e| io::Error::new(e.kind(), e.to_string()))
}

/// TSC stamp of the most recent handled kick (0 if none yet).
pub fn last_arrival_tsc() -> u64 {
    LAST_ARRIVAL_TSC.load(Ordering::Acquire)
}

/// Total kicks handled by this process.
pub fn handled_count() -> u64 {
    HANDLED.load(Ordering::Relaxed)
}

/// Why a kernel-mediated kick failed to go out.
///
/// `pthread_kill` can legitimately fail while the engine is running —
/// most commonly `ESRCH` when the receiver thread exited between the
/// scheduler's snapshot and the send. Callers must treat these as
/// delivery failures to route around, not programming errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryError {
    /// The target thread no longer exists (`ESRCH`).
    TargetGone,
    /// The kernel rejected the send with this errno.
    SendFailed(i32),
    /// A transient failure injected by an installed fault plan.
    Injected,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryError::TargetGone => write!(f, "kick target thread is gone (ESRCH)"),
            DeliveryError::SendFailed(errno) => {
                write!(f, "pthread_kill failed (errno {errno})")
            }
            DeliveryError::Injected => write!(f, "injected signal-send failure"),
        }
    }
}

impl std::error::Error for DeliveryError {}

impl From<DeliveryError> for io::Error {
    fn from(e: DeliveryError) -> io::Error {
        match e {
            DeliveryError::TargetGone => io::Error::from_raw_os_error(libc::ESRCH),
            DeliveryError::SendFailed(errno) => io::Error::from_raw_os_error(errno),
            DeliveryError::Injected => io::Error::other(e.to_string()),
        }
    }
}

/// A kernel-mediated sending endpoint: posts into the UPID like a normal
/// sender, then signals the receiver thread.
pub struct SignalKicker {
    upid: Arc<Upid>,
    vector: u8,
    target: libc::pthread_t,
}

// SAFETY: pthread_t is a thread handle valid process-wide; pthread_kill
// from any thread is allowed.
unsafe impl Send for SignalKicker {}
// SAFETY: same contract as Send above — pthread_kill on a process-wide
// thread handle is safe from any thread concurrently.
unsafe impl Sync for SignalKicker {}

impl SignalKicker {
    /// Creates a kicker targeting the *calling* thread. Call this on the
    /// receiver thread, then hand the kicker to the scheduler.
    pub fn for_current_thread(upid: Arc<Upid>, vector: u8) -> io::Result<SignalKicker> {
        install_handler()?;
        // SAFETY: pthread_self has no preconditions.
        let target = unsafe { libc::pthread_self() };
        Ok(SignalKicker {
            upid,
            vector,
            target,
        })
    }

    /// Posts the vector and signals the receiver thread. Returns the TSC
    /// stamp taken just before `pthread_kill`, for latency measurement.
    ///
    /// A dead target (`ESRCH`) surfaces as [`DeliveryError::TargetGone`]
    /// rather than a panic — the scheduler downgrades or retries on
    /// delivery errors instead of crashing the dispatch loop. Under an
    /// installed fault plan, the kick may be silently swallowed (bit
    /// posted, no signal) or fail with [`DeliveryError::Injected`].
    pub fn kick(&self) -> Result<u64, DeliveryError> {
        preempt_trace::emit(preempt_trace::TraceEvent::UipiSent {
            target: self.upid.owner(),
            vector: self.vector,
        });
        match preempt_faults::on_signal_send() {
            preempt_faults::SignalFault::Deliver => {}
            preempt_faults::SignalFault::Drop => {
                // Lost kick: the bit is in the UPID but no signal goes
                // out, and the sender cannot tell.
                self.upid.post(self.vector);
                return Ok(rdtsc());
            }
            preempt_faults::SignalFault::Error => return Err(DeliveryError::Injected),
        }
        self.upid.post(self.vector);
        let t = rdtsc();
        // SAFETY: target is a pthread handle owned by the runtime that
        // created the kicker; pthread_kill on a stale handle is reported
        // as ESRCH, which we surface as a typed error.
        let rc = unsafe { libc::pthread_kill(self.target, KICK_SIGNAL) };
        match rc {
            0 => Ok(t),
            libc::ESRCH => Err(DeliveryError::TargetGone),
            errno => Err(DeliveryError::SendFailed(errno)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn handler_installs_idempotently() {
        install_handler().unwrap();
        install_handler().unwrap();
    }

    #[test]
    fn kick_posts_bit_and_delivers_signal() {
        let upid = Upid::new();
        let (tx, rx) = mpsc::channel::<SignalKicker>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let u = upid.clone();
        let handle = std::thread::spawn(move || {
            let kicker = SignalKicker::for_current_thread(u, 3).unwrap();
            tx.send(kicker).unwrap();
            // Stay alive until the kick arrived so pthread_kill has a
            // valid target.
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        });
        let kicker = rx.recv().unwrap();
        let before = handled_count();
        kicker.kick().unwrap();
        // The signal is asynchronous; wait briefly for the handler.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handled_count() == before && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(handled_count() > before, "signal handler ran");
        assert_eq!(upid.take_pending(), 1 << 3, "pending bit was posted");
        done_tx.send(()).unwrap();
        handle.join().unwrap();
    }
}
