//! Exhaustive interleaving checks for the two protocols the engine's
//! liveness rests on (run with `RUSTFLAGS="--cfg loom" cargo test -p
//! preempt-uintr --test loom`):
//!
//! 1. the UPID pending-bit post/take/repost handoff — no posted vector
//!    may ever be lost, including across a decline-and-repost cycle;
//! 2. the PR-1 epoch/ack watchdog — in every schedule either the worker
//!    acked the delivery or the pending bit is still there for the
//!    watchdog to re-deliver (no lost wakeup), and the interrupt is
//!    handled exactly once (no double execution).
//!
//! The vendored `loom` stub explores all sequentially-consistent
//! interleavings; the stronger-than-SC ordering *requirements* (which
//! SC exploration cannot distinguish) are enforced statically by
//! preempt-lint's atomic-ordering policy table instead.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::thread;
use preempt_uintr::upid::Upid;
use std::sync::Arc;

/// A concurrently posted vector is visible to the receiver after the
/// sender finishes: nothing is lost, nothing is delivered twice.
#[test]
fn pending_bit_post_is_never_lost() {
    loom::model(|| {
        let upid = Upid::new();
        let tx = upid.clone();
        let sender = thread::spawn(move || {
            assert!(tx.post(5), "receiver is active");
        });

        // Receiver races one drain against the sender…
        let early = upid.take_pending();
        sender.join().unwrap();
        // …then drains deterministically after it finishes.
        let late = upid.take_pending();

        let seen = early | late;
        assert_eq!(seen, 1u64 << 5, "posted vector lost or duplicated");
        assert_eq!(early & late, 0, "same vector delivered by two drains");
    });
}

/// Decline-and-repost (the handler deferring delivery) never drops a
/// vector, even while another sender posts concurrently.
#[test]
fn repost_preserves_vectors_under_concurrency() {
    loom::model(|| {
        let upid = Upid::new();
        let tx = upid.clone();
        let sender = thread::spawn(move || {
            tx.post(5);
        });

        upid.post(3);
        let taken = upid.take_pending();
        assert_ne!(taken & (1 << 3), 0, "own post must be visible");
        // Decline: put everything back (receiver was non-preemptible).
        upid.repost(taken);

        sender.join().unwrap();
        let finally = upid.take_pending() | upid.take_pending();
        assert_eq!(
            finally,
            (1 << 3) | (1 << 5),
            "a declined or concurrent vector was lost"
        );
    });
}

/// Teeth check: with the protocol deliberately broken — posting the
/// UPID bit *before* bumping the epoch — the explorer must find the
/// interleaving where the worker handles and acks the stale epoch,
/// leaving the bump unacked with no bit left: a false "lost" delivery
/// the watchdog would re-send, i.e. the exactly-once property dies.
#[test]
#[should_panic(expected = "lost wakeup")]
fn explorer_catches_post_before_epoch_bump() {
    loom::model(|| {
        let epoch = Arc::new(AtomicU64::new(0));
        let ack = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(AtomicU64::new(0));

        let (e, p) = (epoch.clone(), pending.clone());
        let scheduler = thread::spawn(move || {
            p.fetch_or(1, Ordering::Release); // BUG: post first…
            e.fetch_add(1, Ordering::Release); // …bump after
        });

        let (e, a, p) = (epoch.clone(), ack.clone(), pending.clone());
        let worker = thread::spawn(move || {
            let bits = p.swap(0, Ordering::Acquire);
            if bits != 0 {
                a.store(e.load(Ordering::Acquire), Ordering::Release);
            }
        });

        scheduler.join().unwrap();
        worker.join().unwrap();

        if ack.load(Ordering::Acquire) < epoch.load(Ordering::Acquire) {
            let bits = pending.swap(0, Ordering::Acquire);
            assert_ne!(
                bits, 0,
                "lost wakeup: epoch unacked but no pending bit left to re-deliver"
            );
        }
    });
}

/// The epoch/ack watchdog protocol: scheduler bumps the epoch *before*
/// posting; the worker acks *before* handling. In every interleaving,
/// `epoch > ack` after quiescence implies the pending bit survived for
/// the watchdog to re-deliver — so a wakeup is never lost — and the
/// total number of executions is exactly one.
#[test]
fn epoch_ack_watchdog_has_no_lost_wakeup_or_double_execution() {
    loom::model(|| {
        let epoch = Arc::new(AtomicU64::new(0));
        let ack = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(AtomicU64::new(0));

        // Scheduler: epoch bump happens-before the UPID post.
        let (e, p) = (epoch.clone(), pending.clone());
        let scheduler = thread::spawn(move || {
            e.fetch_add(1, Ordering::Release);
            p.fetch_or(1, Ordering::Release);
        });

        // Worker: one delivery attempt; may race ahead of the post and
        // see nothing (that is the "lost interrupt" the watchdog covers).
        let (e, a, p) = (epoch.clone(), ack.clone(), pending.clone());
        let worker = thread::spawn(move || {
            let bits = p.swap(0, Ordering::Acquire);
            if bits != 0 {
                // Ack before any decline path (worker.rs on_uintr).
                a.store(e.load(Ordering::Acquire), Ordering::Release);
                return 1u32; // handled
            }
            0u32
        });

        scheduler.join().unwrap();
        let mut handled = worker.join().unwrap();

        // Watchdog, after quiescence: epoch unacked ⇒ must re-deliver.
        if ack.load(Ordering::Acquire) < epoch.load(Ordering::Acquire) {
            let bits = pending.swap(0, Ordering::Acquire);
            assert_ne!(
                bits, 0,
                "lost wakeup: epoch unacked but no pending bit left to re-deliver"
            );
            handled += 1;
        } else {
            assert_eq!(
                pending.load(Ordering::Acquire),
                0,
                "acked delivery must have consumed the pending bit"
            );
        }
        assert_eq!(handled, 1, "interrupt must be handled exactly once");
    });
}

/// The PR 6 terminate / exit-flag / orphan-sweep handoff. The worker
/// observes the terminate order at a preemption point, releases every
/// resource it owns (modeled by one latch word), and only then raises
/// the exit flag with `Release` (the `ExitFlag` RAII drop). The
/// supervisor sweeps orphans only after observing the flag with
/// `Acquire`: in every interleaving where the sweep runs, the worker's
/// releases are already visible — the sweep never runs before the exit
/// flag is observed, and never sees a half-released record.
#[test]
fn terminate_exit_flag_gates_orphan_sweep() {
    loom::model(|| {
        let terminated = Arc::new(AtomicU64::new(0));
        let exited = Arc::new(AtomicU64::new(0));
        // 1 = the worker still holds its record latch.
        let record_held = Arc::new(AtomicU64::new(1));

        let (t, e, r) = (terminated.clone(), exited.clone(), record_held.clone());
        let worker = thread::spawn(move || {
            // Preemption point: the terminate order may or may not be
            // visible yet; the exit path is the same either way.
            let _saw_terminate = t.load(Ordering::Acquire) == 1;
            r.store(0, Ordering::Release); // release owned resources…
            e.store(1, Ordering::Release); // …then ExitFlag raises exited
        });

        // Supervisor: raise the terminate order, then decide on a sweep.
        terminated.store(1, Ordering::Release);
        let sweep_allowed = exited.load(Ordering::Acquire) == 1;
        if sweep_allowed {
            // Sweep path: the flag was observed, so every release the
            // worker performed before raising it must be visible.
            assert_eq!(
                record_held.load(Ordering::Acquire),
                0,
                "orphan sweep observed the exit flag but not the release \
                 that happened-before it"
            );
        }
        // (exited == 0 ⇒ the supervisor must NOT sweep this incarnation;
        // there is nothing to assert — not sweeping is the safe branch.)

        worker.join().unwrap();
        assert_eq!(exited.load(Ordering::Acquire), 1, "exit flag must be raised on every path");
    });
}

/// Teeth check: with the exit protocol deliberately inverted — raising
/// the exit flag *before* releasing the record — the explorer must find
/// the interleaving where the sweep observes the flag while the record
/// is still held: exactly the torn handoff the `ExitFlag`-last ordering
/// (and the `exited` store/load spec rows) exists to prevent.
#[test]
#[should_panic(expected = "sweep raced the release")]
fn explorer_catches_exit_flag_before_release() {
    loom::model(|| {
        let exited = Arc::new(AtomicU64::new(0));
        let record_held = Arc::new(AtomicU64::new(1));

        let (e, r) = (exited.clone(), record_held.clone());
        let worker = thread::spawn(move || {
            e.store(1, Ordering::Release); // BUG: flag first…
            r.store(0, Ordering::Release); // …release after
        });

        if exited.load(Ordering::Acquire) == 1 {
            assert_eq!(record_held.load(Ordering::Acquire), 0, "sweep raced the release");
        }
        worker.join().unwrap();
    });
}

// ─── Sharded-plane steal deque (crates/sched/src/deque.rs) ──────────────
//
// Mirror of the deque's two-level protocol: a packed (head ticket, len)
// word claimed by CAS, then a per-slot *sequence stamp*
// (`ticket << 2 | phase`, phases EMPTY→STORING→FULL→TAKING) that pairs
// every deposit and every take with the exact claim that owns it.
// Values live in `AtomicU64` slots (0 = empty). The real deque's
// spin-waits — a pusher waiting for its slot's EMPTY stamp, a consumer
// waiting for FULL — are modeled faithfully with
// `loom::thread::yield_waiting()`, which parks the spinner until
// another thread performs a write, so the explorer covers stalled
// pushers, slot reuse on full rings, and racing handoffs rather than
// only pre-stored slots. The spin window is exactly the region the
// deque's internal `NonPreemptGuard` keeps uintr-free; preempt-lint's
// non-preemptible-region rule pins that statically.

const DQ_EMPTY: u64 = 0;
const DQ_STORING: u64 = 1;
const DQ_FULL: u64 = 2;
const DQ_TAKING: u64 = 3;

fn dq_pack(head: u64, len: u64) -> u64 {
    (head << 32) | len
}

fn dq_unpack(w: u64) -> (u64, u64) {
    (w >> 32, w & 0xFFFF)
}

fn dq_stamp(ticket: u64, phase: u64) -> u64 {
    (ticket << 2) | phase
}

/// Mirrors `StealDeque::claim`: CAS the packed (head ticket, len) word.
/// No ABA stamp — every transition is a pure function of the packed
/// bits, so a word that CASes back to an observed value carries the
/// same meaning. `f(head, len)` returns the new (head, len) and the
/// claimed ticket, or `None` to give up.
fn dq_claim(
    state: &AtomicU64,
    f: impl Fn(u64, u64) -> Option<(u64, u64, u64)>,
) -> Option<u64> {
    loop {
        let cur = state.load(Ordering::Acquire);
        let (head, len) = dq_unpack(cur);
        let (new_head, new_len, ticket) = f(head, len)?;
        let next = dq_pack(new_head, new_len);
        if state
            .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Some(ticket);
        }
    }
}

/// The push's word claim alone: bumps len and returns the tail ticket.
fn dq_push_claim(state: &AtomicU64, cap: u64) -> Option<u64> {
    dq_claim(state, |head, len| {
        if len == cap {
            None
        } else {
            Some((head, len + 1, head + len))
        }
    })
}

/// The steal's word claim alone: drops len and returns the tail ticket
/// (rolled back — the next push reuses the position).
fn dq_steal_claim(state: &AtomicU64) -> Option<u64> {
    dq_claim(state, |head, len| {
        if len == 0 {
            None
        } else {
            Some((head, len - 1, head + len - 1))
        }
    })
}

/// Mirrors the push handoff: wait for the claimed ticket's EMPTY stamp,
/// win the slot by CAS (a steal rolls its ticket back, so two pushes
/// can legitimately hold the same ticket — the CAS admits one at a
/// time), deposit, publish FULL.
fn dq_push_handoff(seqs: &[AtomicU64], slots: &[AtomicU64], cap: u64, t: u64, v: u64) {
    let j = (t % cap) as usize;
    loop {
        if seqs[j].load(Ordering::Acquire) == dq_stamp(t, DQ_EMPTY)
            && seqs[j]
                .compare_exchange(
                    dq_stamp(t, DQ_EMPTY),
                    dq_stamp(t, DQ_STORING),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        {
            break;
        }
        thread::yield_waiting();
    }
    slots[j].store(v, Ordering::Release);
    seqs[j].store(dq_stamp(t, DQ_FULL), Ordering::Release);
}

/// Claim + handoff: the full push.
fn dq_push(
    state: &AtomicU64,
    seqs: &[AtomicU64],
    slots: &[AtomicU64],
    cap: u64,
    v: u64,
) -> bool {
    let Some(t) = dq_push_claim(state, cap) else {
        return false;
    };
    dq_push_handoff(seqs, slots, cap, t, v);
    true
}

/// Mirrors the take handoff shared by pop and steal: wait for the
/// claimed ticket's FULL stamp, win it by CAS, swap the value out, and
/// open the slot for `next_empty` (pop: `ticket + cap`, the position
/// one lap later; steal: `ticket` itself, rolled back for the next
/// push).
fn dq_take(
    seqs: &[AtomicU64],
    slots: &[AtomicU64],
    cap: u64,
    ticket: u64,
    next_empty: u64,
) -> u64 {
    let j = (ticket % cap) as usize;
    loop {
        if seqs[j].load(Ordering::Acquire) == dq_stamp(ticket, DQ_FULL)
            && seqs[j]
                .compare_exchange(
                    dq_stamp(ticket, DQ_FULL),
                    dq_stamp(ticket, DQ_TAKING),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        {
            break;
        }
        thread::yield_waiting();
    }
    let v = slots[j].swap(0, Ordering::Acquire);
    assert_ne!(v, 0, "claimed slot had no stored request");
    seqs[j].store(dq_stamp(next_empty, DQ_EMPTY), Ordering::Release);
    v
}

/// Owner pop: claim the FIFO head ticket, then take its slot.
fn dq_pop(
    state: &AtomicU64,
    seqs: &[AtomicU64],
    slots: &[AtomicU64],
    cap: u64,
) -> Option<u64> {
    let t = dq_claim(state, |head, len| {
        if len == 0 {
            None
        } else {
            Some((head + 1, len - 1, head))
        }
    })?;
    Some(dq_take(seqs, slots, cap, t, t + cap))
}

/// Sibling steal: claim the newest tail ticket, then take its slot,
/// rolling the ticket back so the next push reuses the position.
fn dq_steal(
    state: &AtomicU64,
    seqs: &[AtomicU64],
    slots: &[AtomicU64],
    cap: u64,
) -> Option<u64> {
    let t = dq_steal_claim(state)?;
    Some(dq_take(seqs, slots, cap, t, t))
}

fn dq_slots(cap: u64, init: &[u64]) -> Arc<Vec<AtomicU64>> {
    Arc::new(
        (0..cap)
            .map(|i| AtomicU64::new(init.get(i as usize).copied().unwrap_or(0)))
            .collect(),
    )
}

/// Sequence stamps for a fresh ring with the first `filled` tickets
/// pre-stored (matching `dq_slots(cap, init)` with `init.len() == filled`).
fn dq_seqs(cap: u64, filled: u64) -> Arc<Vec<AtomicU64>> {
    Arc::new(
        (0..cap)
            .map(|i| {
                AtomicU64::new(if i < filled {
                    dq_stamp(i, DQ_FULL)
                } else {
                    dq_stamp(i, DQ_EMPTY)
                })
            })
            .collect(),
    )
}

/// The sharded plane's two races, each explored exhaustively: a
/// shard-local owner pops FIFO from its own queue while a same-shard
/// sibling steals the newest tail entry; and a foreign owner drains its
/// queue while the wedged shard's scheduler shoots a starved request
/// into it. In every interleaving no request is lost or duplicated, the
/// owner gets the FIFO head, the thief gets the newest tail, and the
/// shot-down request survives to be drained exactly once. (Two separate
/// explorations rather than one four-thread model: the races touch
/// disjoint deques, so composing them only multiplies the state space
/// without adding interactions.)
#[test]
fn steal_deque_no_lost_or_duplicated_requests() {
    // Race 1: owner pop vs sibling steal on one shard's queue.
    loom::model(|| {
        // Requests 1 (oldest) and 2 (newest) pre-stored.
        let state = Arc::new(AtomicU64::new(dq_pack(0, 2)));
        let slots = dq_slots(4, &[1, 2]);
        let seqs = dq_seqs(4, 2);

        let (st, sq, sl) = (state.clone(), seqs.clone(), slots.clone());
        let owner = thread::spawn(move || dq_pop(&st, &sq, &sl, 4));
        // Model closure = the same-shard sibling stealing the tail.
        let stolen = dq_steal(&state, &seqs, &slots, 4);
        let popped = owner.join().unwrap();

        assert_eq!(popped, Some(1), "owner pop takes the FIFO head");
        assert_eq!(stolen, Some(2), "steal takes the newest tail entry");
        assert!(dq_pop(&state, &seqs, &slots, 4).is_none());
        assert!(dq_steal(&state, &seqs, &slots, 4).is_none());
    });

    // Race 2: foreign owner pop vs cross-shard shootdown push.
    loom::model(|| {
        // The foreign queue holds request 3; the wedged shard's
        // scheduler shoots request 4 into it concurrently.
        let state = Arc::new(AtomicU64::new(dq_pack(0, 1)));
        let slots = dq_slots(4, &[3]);
        let seqs = dq_seqs(4, 1);

        let (st, sq, sl) = (state.clone(), seqs.clone(), slots.clone());
        let owner = thread::spawn(move || dq_pop(&st, &sq, &sl, 4));
        assert!(
            dq_push(&state, &seqs, &slots, 4, 4),
            "foreign queue had room for the shot-down request"
        );
        let popped = owner.join().unwrap();

        assert_eq!(popped, Some(3), "foreign owner drains its own head");
        // Quiescent drain: exactly the shot-down request remains.
        assert_eq!(
            dq_pop(&state, &seqs, &slots, 4),
            Some(4),
            "shot-down request neither lost nor duplicated"
        );
        assert!(dq_pop(&state, &seqs, &slots, 4).is_none());
    });
}

/// The review's high-severity scenario, explored exhaustively on a
/// capacity-1 ring: a push's handoff stalls while a steal's claim
/// rolls the tail ticket back and a second push claims the *same
/// slot*. The three claims are taken up front in the model closure —
/// exactly the "claims advance around the ring while a deposit is in
/// flight" window, and it keeps the DFS small — then both deposits and
/// the steal's take race freely under a preemption bound of 4 (spin
/// parks are voluntary and stay fully explored; four involuntary
/// switches cover a deposit stalled at any point across both of the
/// other threads' critical windows). The sequence stamps must pair
/// every deposit and take with its own claim: in every explored
/// interleaving both requests survive, are consumed exactly once, and
/// the ring ends quiescent — no overwrite, no duplication, no stuck
/// slot.
#[test]
fn steal_deque_slot_reuse_pairs_handoffs() {
    loom::model_bounded(4, || {
        let state = Arc::new(AtomicU64::new(dq_pack(0, 0)));
        let slots = dq_slots(1, &[]);
        let seqs = dq_seqs(1, 0);

        // Claims, in ring order: push A (ticket 0), steal (ticket 0,
        // rolled back), push B (ticket 0 again — the reused slot).
        let ta = dq_push_claim(&state, 1).expect("empty ring accepts a push");
        let ts = dq_steal_claim(&state).expect("claimed entry is stealable");
        let tb = dq_push_claim(&state, 1).expect("stolen entry frees the ring");
        assert_eq!((ta, ts, tb), (0, 0, 0), "all three claims share the slot");

        // Both deposits race each other and the steal's take.
        let (sq, sl) = (seqs.clone(), slots.clone());
        let a = thread::spawn(move || dq_push_handoff(&sq, &sl, 1, ta, 1));
        let (sq, sl) = (seqs.clone(), slots.clone());
        let b = thread::spawn(move || dq_push_handoff(&sq, &sl, 1, tb, 2));
        let stolen = dq_take(&seqs, &slots, 1, ts, ts);

        a.join().unwrap();
        b.join().unwrap();
        let popped = dq_pop(&state, &seqs, &slots, 1)
            .expect("second deposit still queued");

        let mut got = [stolen, popped];
        got.sort_unstable();
        assert_eq!(got, [1, 2], "slot reuse lost or duplicated a request");
        assert!(dq_pop(&state, &seqs, &slots, 1).is_none());
        let (_, len) = dq_unpack(state.load(Ordering::Acquire));
        assert_eq!(len, 0, "ring quiescent after both handoffs");
    });
}

/// Teeth check: a stealer that reads the slot value *without* first
/// claiming the packed word — skipping the CAS — races the owner's pop
/// of the same slot. The explorer must find the interleaving where both
/// take request 7: the duplication the word-CAS claim exists to prevent.
#[test]
#[should_panic(expected = "duplicated")]
fn explorer_catches_unclaimed_slot_steal() {
    loom::model(|| {
        let state = Arc::new(AtomicU64::new(dq_pack(0, 1)));
        let slots = dq_slots(4, &[7]);
        let seqs = dq_seqs(4, 1);

        let (st, sq, sl) = (state.clone(), seqs.clone(), slots.clone());
        let owner = thread::spawn(move || dq_pop(&st, &sq, &sl, 4));

        // BUG: take the tail value without claiming the word first.
        let stolen = slots[0].load(Ordering::Acquire);

        let popped = owner.join().unwrap();
        if stolen != 0 {
            assert_ne!(
                popped,
                Some(stolen),
                "request duplicated: unclaimed steal raced the owner pop"
            );
        }
    });
}

/// The pre-fix push handoff (teeth only): the deposit waits for the
/// slot to *read* empty instead of winning its claim's sequence stamp,
/// so it is not tied to any particular claim.
fn dq_push_handoff_unpaired(slots: &[AtomicU64], cap: u64, t: u64, v: u64) {
    let j = (t % cap) as usize;
    while slots[j].load(Ordering::Acquire) != 0 {
        thread::yield_waiting();
    }
    slots[j].store(v, Ordering::Release);
}

/// The pre-fix take handoff (teeth only): spin-swap until a value
/// appears — any value, not necessarily the claimed ticket's.
fn dq_take_unpaired(slots: &[AtomicU64], cap: u64, t: u64) -> u64 {
    let j = (t % cap) as usize;
    loop {
        let v = slots[j].swap(0, Ordering::Acquire);
        if v != 0 {
            return v;
        }
        thread::yield_waiting();
    }
}

/// Teeth check: with the *old* null-probe handoff in place of the
/// sequence stamps, the explorer must find the push-push overwrite the
/// review flagged. Same claim layout as
/// `steal_deque_slot_reuse_pairs_handoffs`: on a capacity-1 ring a
/// steal's claim reuses the stalled pusher's slot for a second push.
/// Both deposits observe the slot empty and both store, so one request
/// is overwritten. After the steal's take, the word says one request
/// is still queued — in the losing schedule its slot is empty instead.
#[test]
#[should_panic(expected = "overwrote")]
fn explorer_catches_push_push_slot_overwrite() {
    loom::model(|| {
        let state = Arc::new(AtomicU64::new(dq_pack(0, 0)));
        let slots = dq_slots(1, &[]);

        let ta = dq_push_claim(&state, 1).expect("empty ring accepts a push");
        let ts = dq_steal_claim(&state).expect("claimed entry is stealable");
        let tb = dq_push_claim(&state, 1).expect("stolen entry frees the ring");

        let sl = slots.clone();
        let a = thread::spawn(move || dq_push_handoff_unpaired(&sl, 1, ta, 1));
        let sl = slots.clone();
        let b = thread::spawn(move || dq_push_handoff_unpaired(&sl, 1, tb, 2));
        let _stolen = dq_take_unpaired(&slots, 1, ts);

        a.join().unwrap();
        b.join().unwrap();

        let (_, len) = dq_unpack(state.load(Ordering::Acquire));
        assert_eq!(len, 1, "one steal from two pushes leaves one request queued");
        assert_ne!(
            slots[0].load(Ordering::Acquire),
            0,
            "request lost: a second push overwrote an undeposited slot"
        );
    });
}

/// Degraded-mode entry: the scheduler configures the wake fallback
/// (modeled by one word) before the `Release` store of the degraded
/// flag; a worker that observes the flag with `Acquire` must also
/// observe the fallback configuration. Observing the flag down is
/// always fine — the worker just keeps using UIPI delivery.
#[test]
fn degraded_entry_publishes_wake_fallback() {
    loom::model(|| {
        let degraded = Arc::new(AtomicU64::new(0));
        let fallback_ready = Arc::new(AtomicU64::new(0));

        let (d, f) = (degraded.clone(), fallback_ready.clone());
        let scheduler = thread::spawn(move || {
            f.store(1, Ordering::Release); // configure the fallback…
            d.store(1, Ordering::Release); // …then publish degraded mode
        });

        if degraded.load(Ordering::Acquire) == 1 {
            assert_eq!(
                fallback_ready.load(Ordering::Acquire),
                1,
                "worker entered degraded mode before the wake fallback was configured"
            );
        }
        scheduler.join().unwrap();
    });
}
