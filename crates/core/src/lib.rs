//! # PreemptDB
//!
//! A Rust reproduction of **"Low-Latency Transaction Scheduling via
//! Userspace Interrupts: Why Wait or Yield When You Can Preempt?"**
//! (SIGMOD 2025): a memory-optimized multi-version database engine whose
//! worker threads *preempt* long-running low-priority transactions with
//! software user interrupts and a pure-userspace context switch, so that
//! short high-priority transactions run within microseconds of arrival
//! instead of waiting behind multi-millisecond analytics.
//!
//! The workspace layering (see `DESIGN.md`):
//!
//! | crate | role |
//! |-------|------|
//! | [`context`] | userspace context switch, TCBs, CLS, non-preemptible regions (§4.2–4.4) |
//! | [`uintr`] | software user-interrupt layer + kernel-mediated baseline (§2.3) |
//! | [`sim`] | deterministic virtual-time multicore substrate (testbed substitute) |
//! | [`mvcc`] | ERMIA-style snapshot-isolation storage engine (§2.2) |
//! | [`sched`] | workers, policies, batched on-demand preemption, starvation prevention (§4–5) |
//! | [`prov`] | latency provenance: per-phase attribution + SLO-violation flight recorder |
//! | [`workloads`] | TPC-C, TPC-H Q2, mixed-workload factories (§6.1) |
//!
//! ## Quickstart
//!
//! ```
//! use preemptdb::{Database, DatabaseConfig, Priority};
//!
//! let db = Database::open(DatabaseConfig::default().workers(2));
//!
//! // Ordinary transactional access to the embedded engine:
//! let table = db.engine().create_table("kv");
//! let mut tx = db.engine().begin_si();
//! let oid = tx.insert(&table, b"hello").unwrap();
//! tx.commit().unwrap();
//!
//! // Submit work at a priority; high-priority work preempts low.
//! let engine = db.engine().clone();
//! let value = db.call("lookup", preemptdb::Priority::High, move || {
//!     let mut tx = engine.begin_si();
//!     let v = tx.read(&table, oid).map(|p| p.to_vec());
//!     tx.commit().unwrap();
//!     v
//! });
//! assert_eq!(value.unwrap(), b"hello");
//! db.shutdown();
//! ```

pub use preempt_context as context;
pub use preempt_metrics as metrics;
pub use preempt_mvcc as mvcc;
pub use preempt_prov as prov;
pub use preempt_sched as sched;
pub use preempt_sim as sim;
pub use preempt_trace as trace;
pub use preempt_uintr as uintr;
pub use preempt_workloads as workloads;

pub use preempt_mvcc::{
    Engine, EngineConfig, EngineStats, HashIndex, IsolationLevel, OrderedIndex, Table, TxError,
    TxResult,
};
pub use preempt_sched::{
    DriverConfig, Metrics, Policy, Request, RunReport, Runtime, WorkOutcome, WorkloadFactory,
};
pub use preempt_sim::SimConfig;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use preempt_sched::{worker_main, WorkerShared};
use preempt_uintr::UipiSender;

/// Application-facing priority of submitted work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// The regular scheduling path (paper Figure 5 ①).
    Low,
    /// Preempts in-flight low-priority work via a user interrupt.
    High,
}

impl Priority {
    fn level(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::High => 1,
        }
    }
}

/// Configuration for an embedded [`Database`].
#[derive(Clone, Debug)]
pub struct DatabaseConfig {
    pub workers: usize,
    /// Queue capacity per priority level `[low, high]`.
    pub queue_caps: Vec<usize>,
    pub policy: Policy,
    pub engine: EngineConfig,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            workers: num_cpus_fallback(),
            queue_caps: vec![64, 16],
            policy: Policy::preemptdb(),
            engine: EngineConfig::default(),
        }
    }
}

impl DatabaseConfig {
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }
}

fn num_cpus_fallback() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An embedded PreemptDB instance: the MVCC engine plus a pool of
/// preemption-capable worker threads that execute submitted work by
/// priority. This is the adoption-facing API; the figure-reproduction
/// experiments use [`sched::run`] with the virtual-time simulator
/// instead.
pub struct Database {
    engine: Engine,
    workers: Vec<Arc<WorkerShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    rr: AtomicUsize,
}

impl Database {
    /// Opens the engine and spawns the worker pool.
    pub fn open(cfg: DatabaseConfig) -> Database {
        let engine = Engine::new(cfg.engine);
        let mut workers = Vec::with_capacity(cfg.workers);
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let shared = WorkerShared::new(i, &cfg.queue_caps);
            let ws = shared.clone();
            let policy = cfg.policy;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("preemptdb-worker-{i}"))
                    .spawn(move || worker_main(ws, policy))
                    .expect("spawn worker"),
            );
            workers.push(shared);
        }
        // Wait for workers to publish their user-interrupt descriptors.
        for w in &workers {
            while w.upid().is_none() {
                std::thread::yield_now();
            }
        }
        Database {
            engine,
            workers,
            handles,
            rr: AtomicUsize::new(0),
        }
    }

    /// The embedded storage engine (begin transactions, create tables).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits `work` at `priority` without waiting for completion.
    /// High-priority submissions send a user interrupt to the target
    /// worker (batched on-demand preemption with batch size 1).
    pub fn submit(
        &self,
        kind: &'static str,
        priority: Priority,
        work: impl FnOnce() -> WorkOutcome + Send + 'static,
    ) {
        self.submit_traced(kind, priority, 0, 0, work);
    }

    /// [`submit`](Self::submit) with a provenance identity: `req_id` is
    /// the end-to-end request id (0 = let the worker synthesize one) and
    /// `ingress` the cycle timestamp the request entered the process
    /// (0 = no front door; admission-wait attributes as zero). The
    /// server's wire protocol threads both through here so attribution
    /// and SLO exemplars can name the originating connection.
    pub fn submit_traced(
        &self,
        kind: &'static str,
        priority: Priority,
        req_id: u64,
        ingress: u64,
        work: impl FnOnce() -> WorkOutcome + Send + 'static,
    ) {
        let level = priority.level() as usize;
        // Request work is FnMut (re-executable under a retry budget);
        // `submit` takes one-shot closures, and never sets a retry budget,
        // so re-execution cannot happen — the None arm is a typed
        // impossibility, not a reachable path.
        let mut work = Some(work);
        let mut req = Request::new(kind, priority.level(), sched::clock::now_cycles(), move || {
            match work.take() {
                Some(f) => f(),
                None => WorkOutcome::failed(0),
            }
        })
        .with_provenance(req_id, ingress);
        // Round-robin with overflow to the next worker (spin if all full:
        // backpressure).
        loop {
            for _ in 0..self.workers.len() {
                let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.workers.len();
                let w = &self.workers[i];
                match w.queues[level].push(req) {
                    Ok(()) => {
                        if priority == Priority::High {
                            if let Some(upid) = self.workers[i].upid() {
                                UipiSender::new(upid, priority.level()).send();
                            }
                        }
                        w.wake();
                        return;
                    }
                    Err(back) => req = back,
                }
            }
            std::thread::yield_now();
        }
    }

    /// Submits `f` at `priority` and blocks until it completes, returning
    /// its result.
    pub fn call<R: Send + 'static>(
        &self,
        kind: &'static str,
        priority: Priority,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = mpsc::sync_channel(1);
        self.submit(kind, priority, move || {
            let _ = tx.send(f());
            WorkOutcome::default()
        });
        rx.recv().expect("worker dropped the result")
    }

    /// Runs a conflict-prone transaction with **dynamic priority
    /// adjustment** (paper §5 Discussions: "increasing the priority for
    /// transactions that are already aborted beyond a threshold number of
    /// times"): `f` is attempted at low priority; once it has aborted
    /// `boost_after` times, the remaining retries run at high priority,
    /// where preemption shields them from long low-priority work and the
    /// retry loop convoys less.
    ///
    /// Returns `(result, total_retries, boosted)`.
    pub fn call_with_boost<R: Send + 'static>(
        &self,
        kind: &'static str,
        boost_after: u64,
        f: impl Fn() -> TxResult<R> + Send + Sync + 'static,
    ) -> (R, u64, bool) {
        let f = Arc::new(f);
        let mut retries = 0u64;
        loop {
            let priority = if retries >= boost_after {
                Priority::High
            } else {
                Priority::Low
            };
            let f2 = f.clone();
            // One bounded attempt per dispatch so the boost decision is
            // re-evaluated between aborts.
            let outcome = self.call(kind, priority, move || f2());
            match outcome {
                Ok(r) => return (r, retries, retries >= boost_after),
                Err(
                    TxError::WriteConflict | TxError::ValidationFailed | TxError::FaultInjected,
                ) => {
                    retries += 1;
                }
                Err(e) => panic!("unexpected transaction error: {e}"),
            }
        }
    }

    /// Merged latency metrics across workers (so far; workers flush at
    /// shutdown, so call after [`shutdown`](Self::shutdown) for totals).
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for w in &self.workers {
            m.merge(&w.metrics.lock());
        }
        m
    }

    /// Stops the workers (in-flight work completes) and joins them.
    pub fn shutdown(self) -> Metrics {
        for w in &self.workers {
            w.stop();
        }
        for h in self.handles {
            h.join().expect("worker panicked");
        }
        let mut m = Metrics::new();
        for w in &self.workers {
            m.merge(&w.metrics.lock());
        }
        m
    }

    /// Scheduler-visible worker state (advanced integrations and tests).
    pub fn workers(&self) -> &[Arc<WorkerShared>] {
        &self.workers
    }

    /// Wake-target helper (used internally; exposed for tests).
    pub fn wake_all(&self) {
        for w in &self.workers {
            w.wake();
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("workers", &self.workers.len())
            .field("engine", &self.engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_submit_shutdown() {
        let db = Database::open(DatabaseConfig::default().workers(2));
        assert_eq!(db.worker_count(), 2);
        let n = db.call("add", Priority::High, || 40 + 2);
        assert_eq!(n, 42);
        let m = db.shutdown();
        assert_eq!(m.kind("add").unwrap().completed, 1);
    }

    #[test]
    fn transactions_through_the_pool() {
        let db = Database::open(DatabaseConfig::default().workers(2));
        let table = db.engine().create_table("t");
        let engine = db.engine().clone();
        let t2 = table.clone();
        let oid = db.call("insert", Priority::Low, move || {
            let mut tx = engine.begin_si();
            let oid = tx.insert(&t2, b"payload").unwrap();
            tx.commit().unwrap();
            oid
        });
        let engine = db.engine().clone();
        let got = db.call("read", Priority::High, move || {
            let mut tx = engine.begin_si();
            let v = tx.read(&table, oid).unwrap().to_vec();
            tx.commit().unwrap();
            v
        });
        assert_eq!(got, b"payload");
        db.shutdown();
    }

    #[test]
    fn many_concurrent_calls() {
        let db = Arc::new(Database::open(DatabaseConfig::default().workers(3)));
        let mut joins = Vec::new();
        for t in 0..4 {
            let db = db.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let p = if i % 2 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    };
                    let r = db.call("calc", p, move || t * 1000 + i);
                    assert_eq!(r, t * 1000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let db = Arc::into_inner(db).expect("all clones joined");
        let m = db.shutdown();
        assert_eq!(m.kind("calc").unwrap().completed, 200);
    }
}
