//! Fixture gate: every seeded violation must be flagged (100% recall on
//! the fixture suite) and nothing else may be flagged on those files
//! (no false positives).
//!
//! Markers use compiletest syntax: `//~ ERROR <rule>` on the offending
//! line, with one `^` per line the marker sits below the finding.

use std::fs;
use std::path::Path;

fn markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let ln = i as u32 + 1;
        let Some(pos) = line.find("//~") else { continue };
        let rest = &line[pos + 3..];
        let carets = rest.chars().take_while(|&c| c == '^').count();
        let rest = rest[carets..].trim_start();
        let rest = rest
            .strip_prefix("ERROR")
            .expect("marker must be `//~ ERROR <rule>`")
            .trim();
        let rule = rest.split_whitespace().next().expect("marker missing rule id");
        out.push((ln - carets as u32, rule.to_string()));
    }
    out
}

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn every_seeded_violation_is_flagged_and_nothing_else() {
    let mut total = 0usize;
    let mut entries: Vec<_> = fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found");
    for path in entries {
        let src = fs::read_to_string(&path).unwrap();
        let label = format!("fixtures/{}", path.file_name().unwrap().to_string_lossy());
        let findings = preempt_analysis::analyze_source(&label, &src);
        let expected = markers(&src);
        total += expected.len();
        for (line, rule) in &expected {
            assert!(
                findings.iter().any(|f| f.line == *line && f.rule == rule),
                "{label}: expected `{rule}` at line {line}, got:\n{findings:#?}"
            );
        }
        for f in &findings {
            assert!(
                expected.iter().any(|(l, r)| f.line == *l && f.rule == r.as_str()),
                "{label}: unexpected finding: {f}"
            );
        }
    }
    assert!(total >= 14, "fixture suite shrank unexpectedly ({total} markers)");
}

/// Regression test: the analyzer must reject a fixture that takes two
/// MVCC latches in inconsistent order — as a two-node cycle in the
/// global acquisition-order graph, reported exactly once with both
/// witnessing sites. The companion workspace test proves the real
/// engine defines a single order (no cycles there).
#[test]
fn inconsistent_latch_order_is_a_cycle() {
    let path = fixture_dir().join("latch_order.rs");
    let src = fs::read_to_string(&path).unwrap();
    let findings = preempt_analysis::analyze_source("fixtures/latch_order.rs", &src);
    let cyc: Vec<_> = findings.iter().filter(|f| f.rule == "lock-order-cycle").collect();
    assert_eq!(cyc.len(), 1, "expected exactly one cycle finding: {findings:#?}");
    assert!(cyc[0].msg.contains("cycle"), "{}", cyc[0].msg);
    assert!(
        cyc[0].msg.contains("a.latch") && cyc[0].msg.contains("b.latch"),
        "cycle must name both keys: {}",
        cyc[0].msg
    );
}

/// The three-latch fixture is invisible to any pairwise check: every
/// pair of sites is order-consistent. Only the global graph closes the
/// cycle.
#[test]
fn three_way_deadlock_needs_the_global_graph() {
    let path = fixture_dir().join("deadlock_cycle.rs");
    let src = fs::read_to_string(&path).unwrap();
    let findings = preempt_analysis::analyze_source("fixtures/deadlock_cycle.rs", &src);
    let cyc: Vec<_> = findings.iter().filter(|f| f.rule == "lock-order-cycle").collect();
    assert_eq!(cyc.len(), 1, "{findings:#?}");
    for key in ["a.latch", "b.latch", "c.latch"] {
        assert!(cyc[0].msg.contains(key), "cycle must name `{key}`: {}", cyc[0].msg);
    }
}

/// The suppression mechanism must not silence a *different* rule.
#[test]
fn allow_only_suppresses_its_own_rule() {
    let src = "fn f(p: *const u8) -> u8 {\n    // preempt-lint: allow(handler-panic) — wrong rule on purpose.\n    unsafe { *p }\n}\n";
    let findings = preempt_analysis::analyze_source("fixtures/wrong_allow.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "missing-safety-comment"),
        "mismatched allow must not suppress missing-safety-comment: {findings:#?}"
    );
}
