//! Property test: the lexer's view of a synthesized source file matches
//! the token/comment stream it was built from — for exactly the lexical
//! forms the hand-rolled lexer exists to get right (raw strings with
//! hash fences, nested block comments, raw identifiers, lifetimes vs.
//! char literals), including line numbers across multi-line tokens.
//!
//! The generator emits one item per source line and tracks the line
//! each expected token must land on; a drift in either direction (token
//! misclassified, newline miscounted inside a raw string or nested
//! comment) fails the round trip.

use proptest::prelude::*;

use preempt_analysis::lexer::{lex, TokKind};

#[derive(Clone, Debug)]
enum Item {
    Ident(String),
    RawIdent(&'static str),
    Str(String),
    RawStr { content: String, hashes: usize },
    LineComment(String),
    BlockComment { depth: usize, text: String },
    Lifetime(&'static str),
    CharLit(char),
}

fn string_of(charset: &'static [char], max_len: usize) -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..charset.len(), 0..max_len)
        .prop_map(move |ix| ix.into_iter().map(|i| charset[i]).collect())
        .boxed()
}

fn ident() -> BoxedStrategy<String> {
    const FIRST: &[char] = &['a', 'b', 'z', '_', 'r', 'q'];
    const REST: &[char] = &['a', 'k', '9', '_', '0'];
    (0usize..FIRST.len(), string_of(REST, 6))
        .prop_map(|(f, rest)| format!("{}{rest}", FIRST[f]))
        .boxed()
}

fn item() -> BoxedStrategy<Item> {
    // Plain-string content: quotes and backslashes are re-escaped by the
    // renderer; raw-string content: anything but `#` (so the closing
    // fence can never occur early) including newlines; comment text:
    // nothing that opens or closes a comment.
    const STR_CHARS: &[char] = &['a', 'x', ' ', '"', '\\', '{', '}'];
    const RAW_CHARS: &[char] = &['a', 'y', ' ', '"', '\n', '('];
    const COMMENT_CHARS: &[char] = &['c', ' ', 'x', '!', '\n'];
    const LINE_COMMENT_CHARS: &[char] = &['c', ' ', 'x', '!', '"'];
    const KEYWORDS: &[&str] = &["fn", "loop", "match", "struct", "impl"];
    const LIFETIMES: &[&str] = &["a", "b", "de", "r2", "static_"];
    prop_oneof![
        ident().prop_map(Item::Ident),
        (0usize..KEYWORDS.len()).prop_map(|i| Item::RawIdent(KEYWORDS[i])),
        string_of(STR_CHARS, 10).prop_map(Item::Str),
        (string_of(RAW_CHARS, 10), 1usize..4)
            .prop_map(|(content, hashes)| Item::RawStr { content, hashes }),
        string_of(LINE_COMMENT_CHARS, 10).prop_map(Item::LineComment),
        (1usize..4, string_of(COMMENT_CHARS, 8))
            .prop_map(|(depth, text)| Item::BlockComment { depth, text }),
        (0usize..LIFETIMES.len()).prop_map(|i| Item::Lifetime(LIFETIMES[i])),
        (0usize..4).prop_map(|i| Item::CharLit(['m', 'n', 'o', 'p'][i])),
    ]
    .boxed()
}

/// Expected lexer output for one rendered item.
struct Expect {
    toks: Vec<(u32, TokKind, String)>,
    comments: Vec<(u32, u32)>, // (start line, line span)
}

fn render(item: &Item, out: &mut String, line: &mut u32) -> Expect {
    let start = *line;
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    match item {
        Item::Ident(s) => {
            out.push_str(s);
            toks.push((start, TokKind::Ident, s.clone()));
        }
        Item::RawIdent(kw) => {
            out.push_str("r#");
            out.push_str(kw);
            // Raw identifiers lex as the bare identifier.
            toks.push((start, TokKind::Ident, (*kw).to_string()));
        }
        Item::Str(content) => {
            out.push('"');
            for c in content.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
            // String literals are normalized: the lexer never exposes
            // their content as code.
            toks.push((start, TokKind::Literal, "\"…\"".to_string()));
        }
        Item::RawStr { content, hashes } => {
            out.push('r');
            for _ in 0..*hashes {
                out.push('#');
            }
            out.push('"');
            out.push_str(content);
            out.push('"');
            for _ in 0..*hashes {
                out.push('#');
            }
            *line += content.matches('\n').count() as u32;
            toks.push((start, TokKind::Literal, "\"…\"".to_string()));
        }
        Item::LineComment(text) => {
            out.push_str("// ");
            out.push_str(text);
            comments.push((start, 1));
        }
        Item::BlockComment { depth, text } => {
            for _ in 0..*depth {
                out.push_str("/*");
                out.push_str(text);
            }
            for _ in 0..*depth {
                out.push_str(text);
                out.push_str("*/");
            }
            let newlines = 2 * *depth as u32 * text.matches('\n').count() as u32;
            *line += newlines;
            comments.push((start, newlines + 1));
        }
        Item::Lifetime(name) => {
            out.push('\'');
            out.push_str(name);
            toks.push((start, TokKind::Lifetime, format!("'{name}")));
        }
        Item::CharLit(c) => {
            out.push('\'');
            out.push(*c);
            out.push('\'');
            toks.push((start, TokKind::Literal, format!("'{c}'")));
        }
    }
    out.push('\n');
    *line += 1;
    Expect { toks, comments }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexer_round_trips_synthesized_sources(items in proptest::collection::vec(item(), 0..40)) {
        let mut src = String::new();
        let mut line = 1u32;
        let mut want_toks = Vec::new();
        let mut want_comments = Vec::new();
        for it in &items {
            let e = render(it, &mut src, &mut line);
            want_toks.extend(e.toks);
            want_comments.extend(e.comments);
        }

        let (toks, comments) = lex(&src);

        let got: Vec<(u32, TokKind, String)> =
            toks.into_iter().map(|t| (t.line, t.kind, t.text)).collect();
        prop_assert_eq!(&got, &want_toks, "token drift on:\n{}", src);

        let got_comments: Vec<(u32, u32)> =
            comments.into_iter().map(|c| (c.line, c.lines)).collect();
        prop_assert_eq!(&got_comments, &want_comments, "comment drift on:\n{}", src);
    }
}
