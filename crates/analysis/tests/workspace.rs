//! Workspace gate: the real engine must be clean under every rule.
//! This is the test that forces SAFETY comments, ordering-policy
//! conformance, and a single documented latch order to stay true as the
//! codebase grows.

use std::path::Path;

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let files = preempt_analysis::workspace_files(root);
    assert!(
        files.len() > 30,
        "workspace scan found suspiciously few files ({}); wrong root?",
        files.len()
    );
    let findings = preempt_analysis::analyze_files(root, &files);
    assert!(
        findings.is_empty(),
        "preempt-lint findings on the real workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
