// Fixture: allocation / panic / blocking in handler-reachable code.
// `on_uintr` is a call-graph root; `helper` is reachable from it;
// `not_reachable` is not.

fn on_uintr(vector: u8) {
    helper(vector);
}

fn helper(v: u8) {
    let boxed = Box::new(v); //~ ERROR handler-alloc
    let opt: Option<u8> = maybe(v);
    let x = opt.unwrap(); //~ ERROR handler-panic
    thread::sleep(ms(x)); //~ ERROR handler-block
    use_it(boxed);
}

fn not_reachable() {
    let b = Box::new(7); // fine: not reachable from a handler root
    b.unwrap();
    thread::sleep(ms(1));
}
