// Fixture: suppression syntax. A reasoned allow silences its rule; a
// reason-less allow still suppresses but is itself flagged.

fn suppressed(p: *const u8) -> u8 {
    // preempt-lint: allow(missing-safety-comment) — pointer validity is the caller's documented contract.
    unsafe { *p }
}

fn suppressed_without_reason(p: *const u8) -> u8 {
    // preempt-lint: allow(missing-safety-comment)
    //~^ ERROR allow-missing-reason
    unsafe { *p }
}
