// Fixture: a preemption point inside a latch guard / nonpreempt region.
// Not compiled — consumed by tests/fixtures.rs, which reads the
// compiletest-style ERROR markers for the expected finding per line.

fn bad_latch(r: &Record) {
    let _g = r.latch.read();
    preempt_point(0); //~ ERROR preempt-in-critical
}

fn bad_nonpreempt() {
    let _np = NonPreemptGuard::enter();
    poll(); //~ ERROR preempt-in-critical
}

fn good_dropped(r: &Record) {
    let g = r.latch.read();
    consume(&g);
    drop(g);
    preempt_point(0); // fine: guard explicitly dropped
}

fn good_scoped(r: &Record) {
    {
        let _g = r.latch.write();
        touch();
    }
    preempt_point(0); // fine: guard scope closed
}
