// Fixture: a latch guard held across a call whose callee (transitively)
// reaches a preemption point. The guard's function never names
// `preempt_point` itself — only the call graph sees the violation. The
// finding anchors at the call site, where the fix (drop the guard first)
// or a reasoned `allow` belongs.

fn update_hot(r: &Record) {
    let _g = r.latch.write();
    refresh_stats(r); //~ ERROR preempt-in-critical
}

fn refresh_stats(r: &Record) {
    recompute(r);
    preempt_point(0);
}

fn recompute(_r: &Record) {}

fn update_cold(r: &Record) {
    {
        let _g = r.latch.write();
        recompute(r); // fine: recompute never reaches a preemption point
    }
    refresh_stats(r); // fine: guard scope already closed
}
