// Fixture: the work-stealing thief path (DESIGN.md §13). A steal holds
// the nonpreempt guard while claiming the victim's slot; a callee that
// transitively reaches a preemption point inside that window (here a
// publish helper two hops above one) reintroduces exactly the
// preempt-into-handoff race the guard exists to prevent. The thief's
// own function never names `preempt_point` — only the call graph sees
// the violation, anchored at the call site inside the guarded region.

fn bad_steal(w: &Worker) -> Option<Request> {
    let _np = NonPreemptGuard::enter();
    let req = claim_tail(w);
    publish_steal(w); //~ ERROR preempt-in-critical
    req
}

fn claim_tail(_w: &Worker) -> Option<Request> {
    None // the word-CAS claim itself never reaches a preemption point
}

fn publish_steal(w: &Worker) {
    emit_event(w);
}

fn emit_event(_w: &Worker) {
    preempt_point(0);
}

fn good_steal(w: &Worker) -> Option<Request> {
    {
        let _np = NonPreemptGuard::enter();
        claim_tail(w); // fine: the claim never reaches a point
    }
    publish_steal(w); // fine: guard scope closed before the emit
    None
}
