// Fixture: metric emits are handler-safe. `counter_inc` /
// `hist_record` / `bump` are known-safe entry points, so the
// reachability walk must not expand into their bodies — the allocation
// inside this (stand-in) `counter_inc` is invisible to the handler
// rules. A non-safe helper on the same path is still expanded.

fn on_uintr(vector: u8) {
    counter_inc(vector);
    hist_record(vector, 42);
    shard().bump(vector);
    plain_helper(vector);
}

fn counter_inc(v: u8) {
    // Not expanded: in the real metrics crate this is a relaxed
    // fetch_add; the alloc here proves the walk stops at the name.
    let label = format!("counter-{v}");
    use_it(label);
}

fn plain_helper(v: u8) {
    let boxed = Box::new(v); //~ ERROR handler-alloc
    use_it(boxed);
}
