// Fixture: a three-latch acquisition-order cycle. No pair of sites is
// inconsistent on its own — only the global graph (a → b → c → a) shows
// the deadlock, which is exactly what the v1 pairwise check missed.

fn lock_ab(a: &Record, b: &Record) {
    let _ga = a.latch.write();
    let _gb = b.latch.write();
    touch(a, b);
}

fn lock_bc(b: &Record, c: &Record) {
    let _gb = b.latch.write();
    let _gc = c.latch.write();
    touch(b, c);
}

fn lock_ca(c: &Record, a: &Record) {
    let _gc = c.latch.write();
    let _ga = a.latch.write(); //~ ERROR lock-order-cycle
    touch(c, a);
}
