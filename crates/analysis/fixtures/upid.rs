// Fixture: protocol spec-table violations. Named `upid.rs` so the
// per-file rows for the UPID pending/active protocol apply.

fn post_bad(p: &Upid) {
    p.pending.fetch_or(1u64, Ordering::Relaxed); //~ ERROR protocol-ordering
}

fn post_good(p: &Upid) {
    if p.active.load(Ordering::Acquire) {
        p.pending.fetch_or(1u64, Ordering::Release);
    }
}

fn drain_good(p: &Upid) -> u64 {
    if p.pending.load(Ordering::Relaxed) == 0 {
        return 0; // fast-path probe may be Relaxed: swap below is authoritative
    }
    p.pending.swap(0, Ordering::Acquire)
}

fn clear_uncovered(p: &Upid) {
    // No spec row exists for `pending.fetch_and`: the table is an
    // allow-list with coverage, so an op it has never heard of is a
    // finding until the table (and its loom model) are extended.
    p.pending.fetch_and(0, Ordering::Release); //~ ERROR protocol-ordering
}

fn stats_good(p: &Upid) -> u64 {
    p.posts.load(Ordering::Relaxed) // unlisted field: counters stay Relaxed
}
