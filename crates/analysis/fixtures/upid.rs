// Fixture: atomic-ordering policy violations. Named `upid.rs` so the
// per-file policy table for the UPID pending/active protocol applies.

fn post_bad(p: &Upid) {
    p.pending.fetch_or(1u64, Ordering::Relaxed); //~ ERROR atomic-ordering
}

fn post_good(p: &Upid) {
    if p.active.load(Ordering::Acquire) {
        p.pending.fetch_or(1u64, Ordering::Release);
    }
}

fn drain_good(p: &Upid) -> u64 {
    if p.pending.load(Ordering::Relaxed) == 0 {
        return 0; // fast-path probe may be Relaxed: swap below is authoritative
    }
    p.pending.swap(0, Ordering::Acquire)
}

fn stats_good(p: &Upid) -> u64 {
    p.posts.load(Ordering::Relaxed) // unlisted field: counters stay Relaxed
}
