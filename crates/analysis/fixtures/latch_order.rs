// Fixture: inconsistent latch acquisition order across two sites.

fn transfer_ab(a: &Record, b: &Record) {
    let _ga = a.latch.write();
    let _gb = b.latch.write();
    move_funds(a, b);
}

fn transfer_ba(a: &Record, b: &Record) {
    let _gb = b.latch.write();
    let _ga = a.latch.write(); //~ ERROR lock-order-cycle
    move_funds(b, a);
}

fn sequential_ok(a: &Record, b: &Record) {
    {
        let _gb = b.latch.read();
        peek(b);
    }
    let _ga = a.latch.read(); // fine: previous guard scope already closed
    peek(a);
}
