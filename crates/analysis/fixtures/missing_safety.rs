// Fixture: `unsafe` without a SAFETY comment.

fn bad_block(p: *const u8) -> u8 {
    unsafe { *p } //~ ERROR missing-safety-comment
}

fn good_block(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees p is valid for reads.
    unsafe { *p }
}

/// # Safety
///
/// `p` must be valid for reads.
unsafe fn good_fn(p: *const u8) -> u8 {
    // SAFETY: forwarded from this fn's own contract.
    unsafe { *p }
}

unsafe fn bad_fn() {} //~ ERROR missing-safety-comment

fn good_stmt_start(p: *const u8) -> u8 {
    // SAFETY: the comment sits above the statement, not the block.
    let v = read_it(unsafe { *p });
    v
}
