//! A minimal, error-tolerant Rust lexer.
//!
//! preempt-lint does not need a full parser: every rule it enforces is
//! expressible over a token stream with line numbers plus a side list of
//! comments. Hand-rolling the lexer keeps the workspace hermetic (no
//! `syn`/`proc-macro2`, which the offline CI image does not carry) and
//! makes the analyzer robust to code that does not parse yet.
//!
//! The lexer understands exactly as much of Rust's lexical grammar as is
//! needed to never mistake text for code: line and nested block comments,
//! regular / raw / byte string literals, char literals vs. lifetimes, raw
//! identifiers, and numeric literals. Everything else is an `Ident` or a
//! single-character `Punct`.

/// Token classification. Rules only ever inspect `Ident` text and
/// single-character punctuation, so multi-character operators are not
/// fused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
    pub text: String,
}

impl Tok {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// One comment (line or block) with the 1-based line it starts on and the
/// number of source lines it spans.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub lines: u32,
    pub text: String,
}

/// Lex `src` into (tokens, comments). Never fails: unterminated literals
/// or comments consume to end of input.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    let push = |toks: &mut Vec<Tok>, line: u32, kind: TokKind, text: String| {
        toks.push(Tok { line, kind, text });
    };

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == '/' {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    lines: 1,
                    text: b[start..i].iter().collect(),
                });
                continue;
            }
            if b[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    lines: line - start_line + 1,
                    text: b[start..i.min(b.len())].iter().collect(),
                });
                continue;
            }
        }

        // Char literal or lifetime.
        if c == '\'' {
            if i + 1 < b.len() && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                // `'a'` is a char literal; `'a` (not followed by a closing
                // quote) is a lifetime.
                if i + 2 < b.len() && b[i + 2] == '\'' {
                    push(&mut toks, line, TokKind::Literal, b[i..i + 3].iter().collect());
                    i += 3;
                    continue;
                }
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                push(&mut toks, line, TokKind::Lifetime, b[start..i].iter().collect());
                continue;
            }
            // Escaped or symbolic char literal: consume to closing quote.
            let start = i;
            i += 1;
            while i < b.len() && b[i] != '\'' {
                if b[i] == '\\' {
                    i += 1; // skip escaped char
                }
                if i < b.len() && b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(b.len());
            push(&mut toks, line, TokKind::Literal, b[start..i.min(b.len())].iter().collect());
            continue;
        }

        // String literal (plain).
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < b.len() && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                }
                if i < b.len() && b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(b.len());
            push(&mut toks, start_line, TokKind::Literal, String::from("\"…\""));
            continue;
        }

        // Identifier, keyword, or raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            // Raw strings: r"…", r#"…"#, br"…", b"…" etc.
            let (is_r, skip) = match c {
                'r' => (true, 1usize),
                'b' if i + 1 < b.len() && b[i + 1] == 'r' => (true, 2),
                'b' => (false, 1),
                _ => (false, 0),
            };
            if skip > 0 {
                let mut j = i + skip;
                let mut hashes = 0usize;
                if is_r {
                    while j < b.len() && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if j < b.len() && b[j] == '"' && (is_r || hashes == 0) {
                    // Raw or byte string: scan for closing quote (+hashes).
                    let start_line = line;
                    j += 1;
                    loop {
                        if j >= b.len() {
                            break;
                        }
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if !is_r && b[j] == '\\' {
                            j += 2;
                            continue;
                        }
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while h < hashes && k < b.len() && b[k] == '#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    push(&mut toks, start_line, TokKind::Literal, String::from("\"…\""));
                    continue;
                }
                if is_r && skip == 1 && hashes == 1 && j < b.len() && (b[j].is_alphabetic() || b[j] == '_') {
                    // Raw identifier r#ident: emit the bare identifier.
                    let start = j;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    push(&mut toks, line, TokKind::Ident, b[start..j].iter().collect());
                    i = j;
                    continue;
                }
            }
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            push(&mut toks, line, TokKind::Ident, b[start..i].iter().collect());
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len()
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            push(&mut toks, line, TokKind::Literal, b[start..i].iter().collect());
            continue;
        }

        // Single-character punctuation.
        push(&mut toks, line, TokKind::Punct, c.to_string());
        i += 1;
    }

    (toks, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
// unsafe in a comment
/* unsafe /* nested */ still comment */
let s = "unsafe { }";
let r = r#"unsafe"#;
let c = 'u';
fn f<'a>(x: &'a u8) {}
"##;
        let (toks, comments) = lex(src);
        assert!(toks.iter().all(|t| !(t.kind == TokKind::Ident && t.text == "unsafe")));
        assert_eq!(comments.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn lines_are_tracked() {
        let (toks, _) = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn raw_identifiers() {
        let (toks, _) = lex("r#fn r#loop normal");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["fn", "loop", "normal"]);
    }
}
