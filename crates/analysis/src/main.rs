//! `preempt-lint` — run the preemption-safety rules over the workspace.
//!
//! Usage: `preempt-lint [workspace-root]`. With no argument the tool
//! walks upward from the current directory looking for a `Cargo.toml`
//! next to a `crates/` directory. Exits non-zero iff findings remain
//! after suppressions.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!("preempt-lint: could not locate workspace root (Cargo.toml + crates/)");
                return ExitCode::from(2);
            }
        },
    };

    let files = preempt_analysis::workspace_files(&root);
    if files.is_empty() {
        eprintln!("preempt-lint: no source files found under {}", root.display());
        return ExitCode::from(2);
    }
    let findings = preempt_analysis::analyze_files(&root, &files);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "preempt-lint: {} files clean (preempt-in-critical, missing-safety-comment, \
             atomic-ordering, handler-alloc/panic/block, latch-order)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("preempt-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
