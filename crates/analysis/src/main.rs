//! `preempt-lint` — run the preemption-safety rules over the workspace.
//!
//! Usage:
//!
//! ```text
//! preempt-lint [root] [--format text|json] [--baseline FILE]
//!              [--write-baseline FILE] [--json-out FILE]
//! ```
//!
//! With no root the tool walks upward from the current directory looking
//! for a `Cargo.toml` next to a `crates/` directory.
//!
//! * default: print findings, exit non-zero iff any remain after
//!   suppressions;
//! * `--baseline FILE`: diff-aware mode — exit non-zero only on findings
//!   *not* in the baseline; baselined-but-fixed findings are reported as
//!   resolved notes (refresh the baseline to clear them);
//! * `--write-baseline FILE`: write the current findings as the new
//!   baseline and exit 0;
//! * `--format json`: print the versioned JSON document instead of text;
//! * `--json-out FILE`: additionally write the JSON document to `FILE`
//!   (the artifact CI archives).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use preempt_analysis::report;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

struct Opts {
    root: Option<PathBuf>,
    format_json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    json_out: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        format_json: false,
        baseline: None,
        write_baseline: None,
        json_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut path_arg = |flag: &str| {
            args.next().map(PathBuf::from).ok_or(format!("{flag} needs a file argument"))
        };
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => opts.format_json = true,
                Some("text") => opts.format_json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--baseline" => opts.baseline = Some(path_arg("--baseline")?),
            "--write-baseline" => opts.write_baseline = Some(path_arg("--write-baseline")?),
            "--json-out" => opts.json_out = Some(path_arg("--json-out")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            root => {
                if opts.root.replace(PathBuf::from(root)).is_some() {
                    return Err("more than one root argument".to_string());
                }
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("preempt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("preempt-lint: could not locate workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let files = preempt_analysis::workspace_files(&root);
    if files.is_empty() {
        eprintln!("preempt-lint: no source files found under {}", root.display());
        return ExitCode::from(2);
    }
    let started = Instant::now();
    let findings = preempt_analysis::analyze_files(&root, &files);
    let elapsed = started.elapsed();

    let json = report::to_json(&findings);
    if let Some(out) = &opts.json_out {
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("preempt-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if let Some(out) = &opts.write_baseline {
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("preempt-lint: cannot write baseline {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "preempt-lint: wrote baseline with {} finding(s) to {}",
            findings.len(),
            out.display()
        );
        return ExitCode::SUCCESS;
    }

    // Which findings gate the exit code?
    let gating: Vec<&preempt_analysis::Finding> = match &opts.baseline {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("preempt-lint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let Some(base) = report::parse_baseline(&src) else {
                eprintln!("preempt-lint: malformed baseline {}", path.display());
                return ExitCode::from(2);
            };
            let (new, resolved) = report::diff(&findings, &base);
            for r in &resolved {
                eprintln!(
                    "preempt-lint: note: baselined finding resolved ({}: [{}] {}); \
                     refresh with --write-baseline",
                    r.file, r.rule, r.msg
                );
            }
            new
        }
        None => findings.iter().collect(),
    };

    if opts.format_json {
        print!("{json}");
    } else {
        for f in &gating {
            println!("{f} [{}]", report::severity(f.rule));
        }
    }

    if gating.is_empty() {
        if !opts.format_json {
            println!(
                "preempt-lint: {} files clean in {:?} (preempt-in-critical, lock-order-cycle, \
                 protocol-ordering/model-drift, handler-alloc/panic/block, \
                 missing-safety-comment)",
                files.len(),
                elapsed
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "preempt-lint: {} gating finding(s){}",
            gating.len(),
            if opts.baseline.is_some() { " not in baseline" } else { "" }
        );
        ExitCode::FAILURE
    }
}
