//! preempt-lint: static preemption-safety analysis for the PreemptDB
//! workspace.
//!
//! The compiler cannot see the invariants this engine's correctness
//! rests on: preemption points must not fire inside latch critical
//! sections (wherever the guard flows), the global latch acquisition
//! order must be acyclic, handler-reachable code must not allocate or
//! panic, and the UPID / watchdog / terminate handoffs depend on exact
//! atomic orderings. This crate walks every workspace source file with a
//! hand-rolled lexer (the CI image is hermetic — no `syn`), builds a
//! workspace-wide symbol table and call graph, and enforces those
//! invariants as lint rules. See DESIGN.md §12 for the rule catalogue,
//! the protocol spec table format, the suppression syntax, and the
//! baseline workflow.

pub mod lexer;
pub mod lockorder;
pub mod model;
pub mod protocol;
pub mod regions;
pub mod report;
pub mod resolve;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::Finding;

use model::FileModel;

/// Analyze a single source string (used by the fixture tests). No loom
/// suite is attached, so the model-drift check does not run here.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    rules::run_all(&[FileModel::build(path, src)], None)
}

/// Analyze a set of files together (cross-file rules see all of them).
/// When the workspace's loom suite exists under `root`, the protocol
/// spec table is cross-validated against it.
pub fn analyze_files(root: &Path, paths: &[PathBuf]) -> Vec<Finding> {
    let mut models = Vec::new();
    for p in paths {
        let Ok(src) = std::fs::read_to_string(p) else { continue };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        models.push(FileModel::build(&rel, &src));
    }
    let loom_path = root.join(LOOM_SUITE);
    let loom = std::fs::read_to_string(&loom_path)
        .ok()
        .map(|src| FileModel::build(LOOM_SUITE, &src));
    rules::run_all(&models, loom.as_ref())
}

/// Workspace-relative path of the loom interleaving suite the protocol
/// table cross-references.
pub const LOOM_SUITE: &str = "crates/uintr/tests/loom.rs";

/// Analyze every production source file in the workspace rooted at
/// `root`: `crates/*/src/**/*.rs`. Fixture files, `vendor/`, and the
/// integration-test crate are excluded by construction; `#[cfg(test)]`
/// bodies are excluded by the model.
pub fn analyze_workspace(root: &Path) -> Vec<Finding> {
    let files = workspace_files(root);
    analyze_files(root, &files)
}

/// Enumerate the files `analyze_workspace` covers.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else { return files };
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
