//! Per-file structural model built on top of the token stream.
//!
//! The model computes everything the rules share: brace matching, the
//! token ranges of `#[cfg(test)]` / `#[cfg(loom)]` bodies (skipped —
//! tests may intentionally violate production invariants and loom shims
//! are not compiled in release), function definitions with body ranges,
//! latch-guard / nonpreempt `let` bindings with their lexical scopes, and
//! `// preempt-lint: allow(rule) — reason` suppressions.

use std::collections::HashMap;

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Kind of critical-section guard introduced by a `let` binding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardKind {
    /// An MVCC latch read/write guard (`… .latch … .read()/.write()`).
    Latch,
    /// A `NonPreemptGuard::enter()` region.
    NonPreempt,
    /// An active-txn registry slot (`… registry … .enter(…)`). The
    /// critical window is the *provisional* span: binding → the
    /// `.publish(…)` call that installs the real snapshot (preempting
    /// inside it pins the GC watermark at the provisional timestamp);
    /// holding a published slot across preemption is the normal state
    /// of every active transaction.
    Registry,
}

/// A `let` binding that holds a guard, with the token range over which
/// the guard is lexically live (binding `;` → enclosing block close, cut
/// short by an explicit `drop(name)`).
#[derive(Clone, Debug)]
pub struct GuardBinding {
    pub kind: GuardKind,
    /// Normalized receiver expression for latch guards (e.g. `self.latch`),
    /// used by the lock-order rule. Empty for nonpreempt regions.
    pub key: String,
    pub line: u32,
    /// Token index of the binding's terminating `;`.
    pub start: usize,
    /// Token index one past the last token the guard covers.
    pub end: usize,
    /// Index of the innermost function containing the binding, if any.
    pub func: Option<usize>,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// Token range of the body, `(open_brace, close_brace)` inclusive.
    pub body: Option<(usize, usize)>,
}

/// A `// preempt-lint: allow(<rule>) — <reason>` suppression.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: String,
    pub line: u32,
    /// Lines the suppression applies to: its own line and the next line
    /// that carries a token (comments in between are skipped).
    pub covers: Vec<u32>,
    pub has_reason: bool,
}

/// An `impl` block: the implementing type and its body token range.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// Last path segment of the implementing type (`impl Trait for Ty`
    /// records `Ty`; `impl Ty` records `Ty`).
    pub ty: String,
    /// Body `{` token index.
    pub open: usize,
    /// Matching `}` token index.
    pub close: usize,
}

pub struct FileModel {
    /// Display path (workspace-relative where possible).
    pub path: String,
    /// Crate this file belongs to, normalized to the in-code crate name
    /// (`crates/mvcc/…` → `preempt_mvcc`, `crates/core/…` → `preemptdb`).
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub src_lines: Vec<String>,
    /// `{` index → matching `}` index and vice versa.
    pub braces: HashMap<usize, usize>,
    /// Token ranges (inclusive) excluded from analysis.
    pub skips: Vec<(usize, usize)>,
    pub fns: Vec<FnDef>,
    pub guards: Vec<GuardBinding>,
    pub allows: Vec<Allow>,
    /// `use` aliases visible in this file: local name → full path
    /// segments (`use preempt_context::nonpreempt::NonPreemptGuard` maps
    /// `NonPreemptGuard` → `[preempt_context, nonpreempt, NonPreemptGuard]`).
    pub uses: HashMap<String, Vec<String>>,
    /// `impl` blocks, for qualifying method definitions by receiver type.
    pub impls: Vec<ImplBlock>,
    /// Names of `static … : ClsCell<…>` items declared in this file;
    /// `NAME.with(…)` closures on these are reentrancy-guarded borrows.
    pub cls_statics: Vec<String>,
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl FileModel {
    pub fn build(path: &str, src: &str) -> FileModel {
        let (toks, comments) = lex(src);
        let src_lines: Vec<String> = src.lines().map(str::to_string).collect();
        let braces = match_braces(&toks);
        let skips = find_skips(&toks, &braces);
        let mut m = FileModel {
            path: path.to_string(),
            crate_name: crate_name_of(path),
            toks,
            comments,
            src_lines,
            braces,
            skips,
            fns: Vec::new(),
            guards: Vec::new(),
            allows: Vec::new(),
            uses: HashMap::new(),
            impls: Vec::new(),
            cls_statics: Vec::new(),
        };
        m.fns = m.find_fns();
        m.impls = m.find_impls();
        m.guards = m.find_guards();
        m.allows = m.find_allows();
        m.uses = m.find_uses();
        m.cls_statics = m.find_cls_statics();
        m
    }

    /// The `impl` block type enclosing token `i`, if any (innermost).
    pub fn impl_type_at(&self, i: usize) -> Option<&str> {
        let mut best: Option<&ImplBlock> = None;
        for b in &self.impls {
            if i > b.open && i < b.close && best.is_none_or(|p| b.close - b.open < p.close - p.open)
            {
                best = Some(b);
            }
        }
        best.map(|b| b.ty.as_str())
    }

    /// Is token index `i` inside a skipped (`#[cfg(test)]`/`#[cfg(loom)]`)
    /// region?
    pub fn skipped(&self, i: usize) -> bool {
        self.skips.iter().any(|&(a, b)| i >= a && i <= b)
    }

    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_span = usize::MAX;
        for (fi, f) in self.fns.iter().enumerate() {
            if let Some((a, b)) = f.body {
                if i > a && i < b && b - a < best_span {
                    best = Some(fi);
                    best_span = b - a;
                }
            }
        }
        best
    }

    fn find_fns(&self) -> Vec<FnDef> {
        let mut out = Vec::new();
        let toks = &self.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn") && !self.skipped(i) {
                let Some(name_tok) = toks.get(i + 1) else { break };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                // Find the body `{` : first `{` at paren depth 0 after the
                // name; a `;` at depth 0 first means no body (trait decl).
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut body = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            if let Some(&close) = self.braces.get(&j) {
                                body = Some((j, close));
                            }
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.push(FnDef {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    body,
                });
            }
            i += 1;
        }
        out
    }

    fn find_guards(&self) -> Vec<GuardBinding> {
        let mut out = Vec::new();
        let toks = &self.toks;
        let mut open_stack: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "{" => open_stack.push(i),
                "}" => {
                    open_stack.pop();
                }
                "let" if toks[i].kind == TokKind::Ident && !self.skipped(i) => {
                    if let Some(g) = self.guard_at(i, &open_stack) {
                        out.push(g);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Parse a potential guard binding starting at the `let` token.
    fn guard_at(&self, let_idx: usize, open_stack: &[usize]) -> Option<GuardBinding> {
        let toks = &self.toks;
        // Binding name (for `drop(name)` scope cuts). Patterns other than
        // a plain identifier get no name.
        let mut j = let_idx + 1;
        if toks.get(j)?.is_ident("mut") {
            j += 1;
        }
        let name = toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());

        // Find `=` then the terminating `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut eq = None;
        let mut semi = None;
        let mut k = let_idx + 1;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return None; // malformed / end of block
                    }
                    depth -= 1;
                }
                "=" if depth == 0 && eq.is_none() => eq = Some(k),
                ";" if depth == 0 => {
                    semi = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let (eq, semi) = (eq?, semi?);
        // Classify using only brace-depth-0 tokens of the initializer: a
        // guard constructed inside a nested block expression (e.g.
        // `let v = { let _np = …; f() }.g();`) belongs to that inner
        // block's binding, not to this one.
        let mut bdepth = 0i32;
        let init: Vec<&crate::lexer::Tok> = toks[eq + 1..semi]
            .iter()
            .filter(|t| match t.text.as_str() {
                "{" => {
                    bdepth += 1;
                    false
                }
                "}" => {
                    bdepth -= 1;
                    false
                }
                _ => bdepth == 0,
            })
            .collect();

        // Classify the initializer.
        let is_nonpreempt = init.iter().any(|t| t.is_ident("NonPreemptGuard"))
            && init.iter().any(|t| t.is_ident("enter"));
        let is_registry = init.iter().any(|t| t.is_ident("registry"))
            && init
                .windows(3)
                .any(|w| w[0].is(".") && w[1].is_ident("enter") && w[2].is("("));
        let mut kind = None;
        let mut key = String::new();
        if is_nonpreempt {
            kind = Some(GuardKind::NonPreempt);
        } else if is_registry {
            kind = Some(GuardKind::Registry);
        } else if init.iter().any(|t| t.is_ident("latch")) {
            // Find `.read(` / `.write(` / `.try_write(` and build the key
            // from everything before the method's `.`.
            for (off, w) in init.windows(3).enumerate() {
                if w[0].is(".")
                    && matches!(w[1].text.as_str(), "read" | "write" | "try_write")
                    && w[2].is("(")
                {
                    kind = Some(GuardKind::Latch);
                    key = init[..off]
                        .iter()
                        .filter(|t| !matches!(t.text.as_str(), "&" | "*" | "mut"))
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join("");
                    break;
                }
            }
        }
        let kind = kind?;

        // Scope: from the `;` to the close of the innermost enclosing
        // block, cut short by an explicit `drop(name)` or
        // `std::mem::forget(name)`. Registry guards additionally end at
        // `name.publish(…)` — the provisional window closes there.
        let mut end = open_stack
            .last()
            .and_then(|open| self.braces.get(open).copied())
            .unwrap_or(toks.len());
        if let Some(name) = &name {
            let mut d = semi;
            while d + 2 < end {
                if (toks[d].is_ident("drop") || toks[d].is_ident("forget"))
                    && toks[d + 1].is("(")
                    && toks[d + 2].is(name)
                {
                    end = d;
                    break;
                }
                if kind == GuardKind::Registry
                    && toks[d].is(name)
                    && toks[d + 1].is(".")
                    && toks[d + 2].is_ident("publish")
                {
                    end = d;
                    break;
                }
                d += 1;
            }
        }

        Some(GuardBinding {
            kind,
            key,
            line: toks[let_idx].line,
            start: semi,
            end,
            func: self.enclosing_fn(let_idx),
        })
    }

    /// Parse `use` declarations into an alias map: local name → full
    /// path segments. Handles nested groups (`use a::{b, c::{d as e}};`)
    /// and `as` renames; glob imports are ignored (nothing to alias).
    fn find_uses(&self) -> HashMap<String, Vec<String>> {
        let mut out = HashMap::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].is_ident("use") && !self.skipped(i) {
                let mut cur = i + 1;
                self.use_tree(&mut cur, &[], &mut out);
                i = cur;
            }
            i += 1;
        }
        out
    }

    /// Parse one use-tree at cursor `i` (grammar: `path (::{tree,…} | as
    /// alias)?`), leaving the cursor on the terminator (`;`, `,`, or the
    /// group's `}` — consumed for nested groups, left for the caller's
    /// separator otherwise).
    fn use_tree(&self, i: &mut usize, prefix: &[String], out: &mut HashMap<String, Vec<String>>) {
        let toks = &self.toks;
        let mut path: Vec<String> = prefix.to_vec();
        let mut last: Option<String> = None;
        while let Some(t) = toks.get(*i) {
            match t.text.as_str() {
                ";" | "," | "}" => break, // terminator: caller consumes
                ":" => *i += 1,
                "{" => {
                    // Group: recurse per comma-separated subtree.
                    *i += 1;
                    if let Some(seg) = last.take() {
                        path.push(seg);
                    }
                    loop {
                        self.use_tree(i, &path, out);
                        match toks.get(*i).map(|t| t.text.as_str()) {
                            Some(",") => *i += 1,
                            Some("}") => {
                                *i += 1;
                                return;
                            }
                            _ => return, // malformed / end of input
                        }
                    }
                }
                "as" if t.kind == TokKind::Ident => {
                    *i += 1;
                    let alias = toks
                        .get(*i)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                    if let (Some(seg), Some(alias)) = (last.take(), alias) {
                        *i += 1;
                        path.push(seg);
                        out.insert(alias, path.clone());
                    }
                }
                "*" => {
                    last = None; // glob: nothing to alias
                    *i += 1;
                }
                _ if t.kind == TokKind::Ident => {
                    if let Some(seg) = last.take() {
                        path.push(seg);
                    }
                    last = Some(t.text.clone());
                    *i += 1;
                }
                _ => *i += 1,
            }
        }
        if let Some(seg) = last {
            path.push(seg.clone());
            out.insert(seg, path);
        }
    }

    /// Find `impl` blocks and the (last segment of the) implementing type.
    fn find_impls(&self) -> Vec<ImplBlock> {
        let toks = &self.toks;
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("impl") {
                i += 1;
                continue;
            }
            // Walk to the body `{`, tracking the last ident seen at
            // angle/paren depth 0 before `{`/`where`; an ident after
            // `for` overrides (the implementing type of a trait impl).
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut last_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut in_for = false;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" => angle += 1, // tuple/array types: skip inside
                    ")" | "]" => angle -= 1,
                    "where" if angle <= 0 && t.kind == TokKind::Ident => {
                        // Type portion ended.
                        while j < toks.len() && !toks[j].is("{") {
                            j += 1;
                        }
                        continue;
                    }
                    "for" if angle <= 0 && t.kind == TokKind::Ident => in_for = true,
                    "{" if angle <= 0 => {
                        if let Some(&close) = self.braces.get(&j) {
                            body = Some((j, close));
                        }
                        break;
                    }
                    ";" if angle <= 0 => break,
                    _ if t.kind == TokKind::Ident && angle <= 0 => {
                        if in_for {
                            after_for = Some(t.text.clone());
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (Some((open, close)), Some(ty)) = (body, after_for.or(last_ident)) {
                out.push(ImplBlock { ty, open, close });
            }
            i = j + 1;
        }
        out
    }

    /// Names of `static NAME: ClsCell<…>` items in this file.
    fn find_cls_statics(&self) -> Vec<String> {
        let toks = &self.toks;
        let mut out = Vec::new();
        for i in 0..toks.len().saturating_sub(3) {
            if toks[i].is_ident("static")
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 2].is(":")
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("ClsCell"))
            {
                out.push(toks[i + 1].text.clone());
            }
        }
        out
    }

    fn find_allows(&self) -> Vec<Allow> {
        let mut out = Vec::new();
        for c in &self.comments {
            let Some(pos) = c.text.find("preempt-lint: allow(") else { continue };
            let rest = &c.text[pos + "preempt-lint: allow(".len()..];
            let Some(close) = rest.find(')') else { continue };
            let rule = rest[..close].trim().to_string();
            let tail = &rest[close + 1..];
            let has_reason = tail.chars().filter(|ch| ch.is_alphanumeric()).count() >= 3;
            // Covered lines: the comment's own span plus the next line
            // bearing a token.
            let last = c.line + c.lines - 1;
            let mut covers: Vec<u32> = (c.line..=last).collect();
            if let Some(next) = self.toks.iter().map(|t| t.line).filter(|&l| l > last).min() {
                covers.push(next);
            }
            out.push(Allow { rule, line: c.line, covers, has_reason });
        }
        out
    }

    /// Does a comment containing a safety justification (`SAFETY` or
    /// `# Safety`) cover line `line` or the contiguous comment/attribute
    /// lines directly above it?
    pub fn has_safety_comment(&self, line: u32) -> bool {
        // Walk upward through contiguous comment/attribute lines.
        let mut top = line;
        while top > 1 {
            let prev = top - 1;
            let Some(text) = self.src_lines.get(prev as usize - 1) else { break };
            let t = text.trim_start();
            let is_comment = t.starts_with("//")
                || t.starts_with("/*")
                || t.starts_with('*')
                || self.comments.iter().any(|c| prev >= c.line && prev < c.line + c.lines);
            let is_attr = t.starts_with("#[") || t.starts_with("#!");
            if is_comment || is_attr {
                top = prev;
            } else {
                break;
            }
        }
        self.comments.iter().any(|c| {
            let c_end = c.line + c.lines - 1;
            c_end >= top && c.line <= line && (c.text.contains("SAFETY") || c.text.contains("# Safety"))
        })
    }

    /// The source line on which the statement containing token `i`
    /// starts (scan back to the nearest `;`/`{`/`}`/`,`).
    pub fn stmt_start_line(&self, i: usize) -> u32 {
        let mut j = i;
        while j > 0 {
            let t = &self.toks[j - 1];
            if matches!(t.text.as_str(), ";" | "{" | "}" | ",") || t.is("]") && self.attr_close(j - 1)
            {
                break;
            }
            j -= 1;
        }
        self.tok(j).map(|t| t.line).unwrap_or(self.toks[i].line)
    }

    /// Is the `]` at index `i` the end of an outer attribute?
    fn attr_close(&self, i: usize) -> bool {
        // Scan back to the matching `[`; an attribute starts with `#`.
        let mut depth = 1i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match self.toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        return j > 0 && self.toks[j - 1].is("#");
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Collect the `Ordering` idents appearing in the argument list that
    /// starts at the `(` token index `open`.
    pub fn orderings_in_call(&self, open: usize) -> Vec<&str> {
        let Some(close) = self.matching_paren(open) else { return Vec::new() };
        self.toks[open..=close]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()))
            .map(|t| t.text.as_str())
            .collect()
    }

    /// Paren matching on demand (the braces map only covers `{}`).
    /// Argument lists are short, so a bounded forward scan suffices.
    pub fn matching_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (off, t) in self.toks[open..].iter().enumerate() {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open + off);
                    }
                }
                _ => {}
            }
            if off > 512 {
                break; // degenerate; give up
            }
        }
        None
    }
}

/// Normalized in-code crate name for a workspace-relative path:
/// `crates/mvcc/src/…` → `preempt_mvcc`, `crates/core/…` → `preemptdb`
/// (the one package whose lib name drops the prefix). Non-workspace
/// paths (fixtures) use the path itself so same-crate resolution
/// degenerates to same-file — exactly right for single-file analysis.
pub fn crate_name_of(path: &str) -> String {
    match path.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
        Some("core") => "preemptdb".to_string(),
        Some(dir) => format!("preempt_{dir}"),
        None => path.to_string(),
    }
}

fn match_braces(toks: &[Tok]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                    map.insert(i, open);
                }
            }
            _ => {}
        }
    }
    map
}

/// Find token ranges to exclude: bodies of items annotated
/// `#[cfg(test)]` or `#[cfg(loom)]` (including `any(...)` forms, but not
/// `not(...)` forms).
fn find_skips(toks: &[Tok], braces: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut skips = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is("#") && toks[i + 1].is("[") {
            // Find the matching `]`.
            let mut depth = 0i32;
            let mut close = None;
            for (off, t) in toks[i + 1..].iter().enumerate() {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(i + 1 + off);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(close) = close else {
                i += 1;
                continue;
            };
            let attr = &toks[i + 2..close];
            let has_cfg = attr.iter().any(|t| t.is_ident("cfg"));
            let gated = attr.iter().any(|t| t.is_ident("test") || t.is_ident("loom"));
            let negated = attr.iter().any(|t| t.is_ident("not"));
            if has_cfg && gated && !negated {
                // Skip further attributes, then the next `{ … }` before a
                // `;` is the gated body.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is("#") && toks[j + 1].is("[") {
                    let mut d = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        "{" if depth == 0 => {
                            if let Some(&end) = braces.get(&j) {
                                skips.push((j, end));
                            }
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    skips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_bodies_are_skipped() {
        let src = "fn a() { x(); }\n#[cfg(test)]\nmod tests { fn t() { y(); } }\n";
        let m = FileModel::build("t.rs", src);
        let y_idx = m.toks.iter().position(|t| t.is_ident("y")).unwrap();
        let x_idx = m.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(m.skipped(y_idx));
        assert!(!m.skipped(x_idx));
    }

    #[test]
    fn guards_and_scopes() {
        let src = "fn f(r: &R) {\n    let g = r.latch.read();\n    touch();\n    drop(g);\n    after();\n}\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.guards.len(), 1);
        let g = &m.guards[0];
        assert_eq!(g.kind, GuardKind::Latch);
        assert_eq!(g.key, "r.latch");
        let after_idx = m.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(g.end <= after_idx, "drop(g) should cut the scope");
    }

    #[test]
    fn allow_parsing() {
        let src = "// preempt-lint: allow(handler-panic) — abort is the contract here.\nfoo();\n// preempt-lint: allow(handler-alloc)\nbar();\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.allows.len(), 2);
        assert!(m.allows[0].has_reason);
        assert!(m.allows[0].covers.contains(&2));
        assert!(!m.allows[1].has_reason);
    }

    #[test]
    fn use_aliases_cover_groups_and_renames() {
        let src = "use preempt_context::nonpreempt::NonPreemptGuard;\n\
                   use crate::lexer::{lex, Comment as C, Tok};\n\
                   use std::collections::*;\n";
        let m = FileModel::build("crates/analysis/src/x.rs", src);
        assert_eq!(
            m.uses.get("NonPreemptGuard").unwrap(),
            &vec![
                "preempt_context".to_string(),
                "nonpreempt".to_string(),
                "NonPreemptGuard".to_string()
            ]
        );
        assert_eq!(
            m.uses.get("C").unwrap(),
            &vec!["crate".to_string(), "lexer".to_string(), "Comment".to_string()]
        );
        assert_eq!(
            m.uses.get("Tok").unwrap(),
            &vec!["crate".to_string(), "lexer".to_string(), "Tok".to_string()]
        );
        assert!(m.uses.contains_key("lex"));
        assert!(!m.uses.contains_key("*"));
    }

    #[test]
    fn impl_blocks_record_receiver_type() {
        let src = "struct Foo;\nimpl Foo { fn m(&self) {} }\n\
                   impl<T: Clone> Drop for Bar<T> where T: Send { fn drop(&mut self) {} }\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].ty, "Foo");
        assert_eq!(m.impls[1].ty, "Bar");
        let m_idx = m.toks.iter().position(|t| t.is_ident("m")).unwrap();
        assert_eq!(m.impl_type_at(m_idx + 2), Some("Foo"));
    }

    #[test]
    fn registry_guard_window_ends_at_publish() {
        let src = "fn begin(e: &E) {\n    let slot = e.registry.enter(0);\n    let ts = e.clock();\n    slot.publish(ts);\n    later();\n}\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.guards.len(), 1);
        let g = &m.guards[0];
        assert_eq!(g.kind, GuardKind::Registry);
        let later = m.toks.iter().position(|t| t.is_ident("later")).unwrap();
        let publish = m.toks.iter().position(|t| t.is_ident("publish")).unwrap();
        assert!(g.end <= publish, "window must close at publish");
        assert!(g.end < later);
    }

    #[test]
    fn cls_statics_are_found() {
        let src = "static CURRENT: ClsCell<u64> = ClsCell::new(|| 0);\nstatic OTHER: u32 = 0;\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.cls_statics, vec!["CURRENT".to_string()]);
    }

    #[test]
    fn crate_names_normalize() {
        assert_eq!(crate_name_of("crates/mvcc/src/latch.rs"), "preempt_mvcc");
        assert_eq!(crate_name_of("crates/core/src/lib.rs"), "preemptdb");
        assert_eq!(crate_name_of("fixtures/upid.rs"), "fixtures/upid.rs");
    }

    #[test]
    fn safety_comment_detection() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid.\n    unsafe { *p }\n}\nfn g(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let m = FileModel::build("t.rs", src);
        assert!(m.has_safety_comment(3));
        assert!(!m.has_safety_comment(6));
    }
}
