//! Per-file structural model built on top of the token stream.
//!
//! The model computes everything the rules share: brace matching, the
//! token ranges of `#[cfg(test)]` / `#[cfg(loom)]` bodies (skipped —
//! tests may intentionally violate production invariants and loom shims
//! are not compiled in release), function definitions with body ranges,
//! latch-guard / nonpreempt `let` bindings with their lexical scopes, and
//! `// preempt-lint: allow(rule) — reason` suppressions.

use std::collections::HashMap;

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Kind of critical-section guard introduced by a `let` binding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardKind {
    /// An MVCC latch read/write guard (`… .latch … .read()/.write()`).
    Latch,
    /// A `NonPreemptGuard::enter()` region.
    NonPreempt,
}

/// A `let` binding that holds a guard, with the token range over which
/// the guard is lexically live (binding `;` → enclosing block close, cut
/// short by an explicit `drop(name)`).
#[derive(Clone, Debug)]
pub struct GuardBinding {
    pub kind: GuardKind,
    /// Normalized receiver expression for latch guards (e.g. `self.latch`),
    /// used by the lock-order rule. Empty for nonpreempt regions.
    pub key: String,
    pub line: u32,
    /// Token index of the binding's terminating `;`.
    pub start: usize,
    /// Token index one past the last token the guard covers.
    pub end: usize,
    /// Index of the innermost function containing the binding, if any.
    pub func: Option<usize>,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// Token range of the body, `(open_brace, close_brace)` inclusive.
    pub body: Option<(usize, usize)>,
}

/// A `// preempt-lint: allow(<rule>) — <reason>` suppression.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: String,
    pub line: u32,
    /// Lines the suppression applies to: its own line and the next line
    /// that carries a token (comments in between are skipped).
    pub covers: Vec<u32>,
    pub has_reason: bool,
}

pub struct FileModel {
    /// Display path (workspace-relative where possible).
    pub path: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub src_lines: Vec<String>,
    /// `{` index → matching `}` index and vice versa.
    pub braces: HashMap<usize, usize>,
    /// Token ranges (inclusive) excluded from analysis.
    pub skips: Vec<(usize, usize)>,
    pub fns: Vec<FnDef>,
    pub guards: Vec<GuardBinding>,
    pub allows: Vec<Allow>,
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl FileModel {
    pub fn build(path: &str, src: &str) -> FileModel {
        let (toks, comments) = lex(src);
        let src_lines: Vec<String> = src.lines().map(str::to_string).collect();
        let braces = match_braces(&toks);
        let skips = find_skips(&toks, &braces);
        let mut m = FileModel {
            path: path.to_string(),
            toks,
            comments,
            src_lines,
            braces,
            skips,
            fns: Vec::new(),
            guards: Vec::new(),
            allows: Vec::new(),
        };
        m.fns = m.find_fns();
        m.guards = m.find_guards();
        m.allows = m.find_allows();
        m
    }

    /// Is token index `i` inside a skipped (`#[cfg(test)]`/`#[cfg(loom)]`)
    /// region?
    pub fn skipped(&self, i: usize) -> bool {
        self.skips.iter().any(|&(a, b)| i >= a && i <= b)
    }

    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_span = usize::MAX;
        for (fi, f) in self.fns.iter().enumerate() {
            if let Some((a, b)) = f.body {
                if i > a && i < b && b - a < best_span {
                    best = Some(fi);
                    best_span = b - a;
                }
            }
        }
        best
    }

    fn find_fns(&self) -> Vec<FnDef> {
        let mut out = Vec::new();
        let toks = &self.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn") && !self.skipped(i) {
                let Some(name_tok) = toks.get(i + 1) else { break };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                // Find the body `{` : first `{` at paren depth 0 after the
                // name; a `;` at depth 0 first means no body (trait decl).
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut body = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            if let Some(&close) = self.braces.get(&j) {
                                body = Some((j, close));
                            }
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.push(FnDef {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    body,
                });
            }
            i += 1;
        }
        out
    }

    fn find_guards(&self) -> Vec<GuardBinding> {
        let mut out = Vec::new();
        let toks = &self.toks;
        let mut open_stack: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "{" => open_stack.push(i),
                "}" => {
                    open_stack.pop();
                }
                "let" if toks[i].kind == TokKind::Ident && !self.skipped(i) => {
                    if let Some(g) = self.guard_at(i, &open_stack) {
                        out.push(g);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Parse a potential guard binding starting at the `let` token.
    fn guard_at(&self, let_idx: usize, open_stack: &[usize]) -> Option<GuardBinding> {
        let toks = &self.toks;
        // Binding name (for `drop(name)` scope cuts). Patterns other than
        // a plain identifier get no name.
        let mut j = let_idx + 1;
        if toks.get(j)?.is_ident("mut") {
            j += 1;
        }
        let name = toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());

        // Find `=` then the terminating `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut eq = None;
        let mut semi = None;
        let mut k = let_idx + 1;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return None; // malformed / end of block
                    }
                    depth -= 1;
                }
                "=" if depth == 0 && eq.is_none() => eq = Some(k),
                ";" if depth == 0 => {
                    semi = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let (eq, semi) = (eq?, semi?);
        // Classify using only brace-depth-0 tokens of the initializer: a
        // guard constructed inside a nested block expression (e.g.
        // `let v = { let _np = …; f() }.g();`) belongs to that inner
        // block's binding, not to this one.
        let mut bdepth = 0i32;
        let init: Vec<&crate::lexer::Tok> = toks[eq + 1..semi]
            .iter()
            .filter(|t| match t.text.as_str() {
                "{" => {
                    bdepth += 1;
                    false
                }
                "}" => {
                    bdepth -= 1;
                    false
                }
                _ => bdepth == 0,
            })
            .collect();

        // Classify the initializer.
        let is_nonpreempt = init.iter().any(|t| t.is_ident("NonPreemptGuard"))
            && init.iter().any(|t| t.is_ident("enter"));
        let mut kind = None;
        let mut key = String::new();
        if is_nonpreempt {
            kind = Some(GuardKind::NonPreempt);
        } else if init.iter().any(|t| t.is_ident("latch")) {
            // Find `.read(` / `.write(` / `.try_write(` and build the key
            // from everything before the method's `.`.
            for (off, w) in init.windows(3).enumerate() {
                if w[0].is(".")
                    && matches!(w[1].text.as_str(), "read" | "write" | "try_write")
                    && w[2].is("(")
                {
                    kind = Some(GuardKind::Latch);
                    key = init[..off]
                        .iter()
                        .filter(|t| !matches!(t.text.as_str(), "&" | "*" | "mut"))
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join("");
                    break;
                }
            }
        }
        let kind = kind?;

        // Scope: from the `;` to the close of the innermost enclosing
        // block, cut short by an explicit `drop(name)`.
        let mut end = open_stack
            .last()
            .and_then(|open| self.braces.get(open).copied())
            .unwrap_or(toks.len());
        if let Some(name) = &name {
            let mut d = semi;
            while d + 2 < end {
                if toks[d].is_ident("drop") && toks[d + 1].is("(") && toks[d + 2].is(name) {
                    end = d;
                    break;
                }
                d += 1;
            }
        }

        Some(GuardBinding {
            kind,
            key,
            line: toks[let_idx].line,
            start: semi,
            end,
            func: self.enclosing_fn(let_idx),
        })
    }

    fn find_allows(&self) -> Vec<Allow> {
        let mut out = Vec::new();
        for c in &self.comments {
            let Some(pos) = c.text.find("preempt-lint: allow(") else { continue };
            let rest = &c.text[pos + "preempt-lint: allow(".len()..];
            let Some(close) = rest.find(')') else { continue };
            let rule = rest[..close].trim().to_string();
            let tail = &rest[close + 1..];
            let has_reason = tail.chars().filter(|ch| ch.is_alphanumeric()).count() >= 3;
            // Covered lines: the comment's own span plus the next line
            // bearing a token.
            let last = c.line + c.lines - 1;
            let mut covers: Vec<u32> = (c.line..=last).collect();
            if let Some(next) = self.toks.iter().map(|t| t.line).filter(|&l| l > last).min() {
                covers.push(next);
            }
            out.push(Allow { rule, line: c.line, covers, has_reason });
        }
        out
    }

    /// Does a comment containing a safety justification (`SAFETY` or
    /// `# Safety`) cover line `line` or the contiguous comment/attribute
    /// lines directly above it?
    pub fn has_safety_comment(&self, line: u32) -> bool {
        // Walk upward through contiguous comment/attribute lines.
        let mut top = line;
        while top > 1 {
            let prev = top - 1;
            let Some(text) = self.src_lines.get(prev as usize - 1) else { break };
            let t = text.trim_start();
            let is_comment = t.starts_with("//")
                || t.starts_with("/*")
                || t.starts_with('*')
                || self.comments.iter().any(|c| prev >= c.line && prev < c.line + c.lines);
            let is_attr = t.starts_with("#[") || t.starts_with("#!");
            if is_comment || is_attr {
                top = prev;
            } else {
                break;
            }
        }
        self.comments.iter().any(|c| {
            let c_end = c.line + c.lines - 1;
            c_end >= top && c.line <= line && (c.text.contains("SAFETY") || c.text.contains("# Safety"))
        })
    }

    /// The source line on which the statement containing token `i`
    /// starts (scan back to the nearest `;`/`{`/`}`/`,`).
    pub fn stmt_start_line(&self, i: usize) -> u32 {
        let mut j = i;
        while j > 0 {
            let t = &self.toks[j - 1];
            if matches!(t.text.as_str(), ";" | "{" | "}" | ",") || t.is("]") && self.attr_close(j - 1)
            {
                break;
            }
            j -= 1;
        }
        self.tok(j).map(|t| t.line).unwrap_or(self.toks[i].line)
    }

    /// Is the `]` at index `i` the end of an outer attribute?
    fn attr_close(&self, i: usize) -> bool {
        // Scan back to the matching `[`; an attribute starts with `#`.
        let mut depth = 1i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match self.toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        return j > 0 && self.toks[j - 1].is("#");
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Collect the `Ordering` idents appearing in the argument list that
    /// starts at the `(` token index `open`.
    pub fn orderings_in_call(&self, open: usize) -> Vec<&str> {
        let Some(close) = self.matching_paren(open) else { return Vec::new() };
        self.toks[open..=close]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()))
            .map(|t| t.text.as_str())
            .collect()
    }

    /// Paren matching on demand (the braces map only covers `{}`).
    /// Argument lists are short, so a bounded forward scan suffices.
    pub fn matching_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (off, t) in self.toks[open..].iter().enumerate() {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open + off);
                    }
                }
                _ => {}
            }
            if off > 512 {
                break; // degenerate; give up
            }
        }
        None
    }
}

fn match_braces(toks: &[Tok]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                    map.insert(i, open);
                }
            }
            _ => {}
        }
    }
    map
}

/// Find token ranges to exclude: bodies of items annotated
/// `#[cfg(test)]` or `#[cfg(loom)]` (including `any(...)` forms, but not
/// `not(...)` forms).
fn find_skips(toks: &[Tok], braces: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut skips = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is("#") && toks[i + 1].is("[") {
            // Find the matching `]`.
            let mut depth = 0i32;
            let mut close = None;
            for (off, t) in toks[i + 1..].iter().enumerate() {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(i + 1 + off);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(close) = close else {
                i += 1;
                continue;
            };
            let attr = &toks[i + 2..close];
            let has_cfg = attr.iter().any(|t| t.is_ident("cfg"));
            let gated = attr.iter().any(|t| t.is_ident("test") || t.is_ident("loom"));
            let negated = attr.iter().any(|t| t.is_ident("not"));
            if has_cfg && gated && !negated {
                // Skip further attributes, then the next `{ … }` before a
                // `;` is the gated body.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is("#") && toks[j + 1].is("[") {
                    let mut d = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        "{" if depth == 0 => {
                            if let Some(&end) = braces.get(&j) {
                                skips.push((j, end));
                            }
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    skips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_bodies_are_skipped() {
        let src = "fn a() { x(); }\n#[cfg(test)]\nmod tests { fn t() { y(); } }\n";
        let m = FileModel::build("t.rs", src);
        let y_idx = m.toks.iter().position(|t| t.is_ident("y")).unwrap();
        let x_idx = m.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(m.skipped(y_idx));
        assert!(!m.skipped(x_idx));
    }

    #[test]
    fn guards_and_scopes() {
        let src = "fn f(r: &R) {\n    let g = r.latch.read();\n    touch();\n    drop(g);\n    after();\n}\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.guards.len(), 1);
        let g = &m.guards[0];
        assert_eq!(g.kind, GuardKind::Latch);
        assert_eq!(g.key, "r.latch");
        let after_idx = m.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(g.end <= after_idx, "drop(g) should cut the scope");
    }

    #[test]
    fn allow_parsing() {
        let src = "// preempt-lint: allow(handler-panic) — abort is the contract here.\nfoo();\n// preempt-lint: allow(handler-alloc)\nbar();\n";
        let m = FileModel::build("t.rs", src);
        assert_eq!(m.allows.len(), 2);
        assert!(m.allows[0].has_reason);
        assert!(m.allows[0].covers.contains(&2));
        assert!(!m.allows[1].has_reason);
    }

    #[test]
    fn safety_comment_detection() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid.\n    unsafe { *p }\n}\nfn g(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let m = FileModel::build("t.rs", src);
        assert!(m.has_safety_comment(3));
        assert!(!m.has_safety_comment(6));
    }
}
