//! Workspace-wide symbol table and cross-crate call graph.
//!
//! v1 of the analyzer resolved calls by bare name with a same-crate-first
//! heuristic; that cannot carry interprocedural region inference or a
//! global lock-order graph. This module builds, once per analysis run:
//!
//! * a flat table of every function definition, qualified by crate and
//!   (for methods) the `impl` receiver type;
//! * per-function call-site lists distinguishing bare calls, qualified
//!   path calls (`crate::a::f(…)`, `Type::method(…)`, `use`-aliased
//!   names), and method-receiver calls (`.f(…)`);
//! * a resolver mapping each site to candidate definitions. Path calls
//!   resolve precisely (crate and/or receiver type pinned); bare calls
//!   resolve same-file → same-crate → workspace; method calls resolve by
//!   name across `impl` blocks workspace-wide, subject to the ubiquity
//!   stoplist (following `.load(…)` by name would union every atomic's
//!   impl into the graph).
//!
//! The resolver is deliberately an over-approximation (candidate *sets*,
//! not unique targets): downstream passes treat "any candidate reaches X"
//! as reachable, which is the conservative direction for safety rules.

use std::collections::HashMap;

use crate::lexer::TokKind;
use crate::model::FileModel;

/// Flat function id: index into [`Symbols::fns`].
pub type FnId = usize;

/// One function definition, workspace-qualified.
pub struct FnInfo {
    /// Index of the defining file in the model slice.
    pub model: usize,
    /// Index into that model's `fns`.
    pub fnidx: usize,
    pub name: String,
    pub crate_name: String,
    /// Receiver type when defined inside an `impl` block.
    pub impl_type: Option<String>,
    /// Body token range `(open, close)`, present for every entry here.
    pub body: (usize, usize),
    pub line: u32,
}

/// How a call site names its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)` with no qualifier.
    Bare,
    /// `.f(…)` on a receiver expression.
    Method,
    /// `a::b::f(…)` — the segments *before* the called name.
    Path(Vec<String>),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index of the called name.
    pub tok: usize,
    pub line: u32,
    pub name: String,
    pub kind: CallKind,
}

/// Common method names excluded from name-based expansion: following
/// them by bare name would union unrelated `impl`s into the graph
/// (`.load(…)` on an atomic must not pull in every workload's `load`).
/// Path-qualified calls (`Type::new(…)`) are exempt — the receiver type
/// pins the definition.
pub const CALL_STOPLIST: &[&str] = &[
    "new", "len", "is_empty", "push", "pop", "get", "set", "insert", "remove", "clear",
    "iter", "next", "drop", "clone", "fmt", "default", "from", "into", "as_ref", "as_mut",
    "eq", "hash", "cmp", "with", "take", "replace", "contains", "min", "max", "map",
    "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_or", "fetch_and",
    "compare_exchange", "compare_exchange_weak", "entry", "collect", "read", "write",
    "send", "recv", "flush", "extend", "filter", "count", "sum", "get_or_init",
];

pub struct Symbols {
    pub fns: Vec<FnInfo>,
    /// name → flat fn ids.
    by_name: HashMap<String, Vec<FnId>>,
    /// `(model, fnidx)` → flat id, for mapping back from models.
    by_def: HashMap<(usize, usize), FnId>,
}

impl Symbols {
    pub fn build(models: &[FileModel]) -> Symbols {
        let mut fns = Vec::new();
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut by_def = HashMap::new();
        for (mi, m) in models.iter().enumerate() {
            for (fi, f) in m.fns.iter().enumerate() {
                let Some(body) = f.body else { continue };
                let id = fns.len();
                fns.push(FnInfo {
                    model: mi,
                    fnidx: fi,
                    name: f.name.clone(),
                    crate_name: m.crate_name.clone(),
                    impl_type: m.impl_type_at(body.0).map(str::to_string),
                    body,
                    line: f.line,
                });
                by_name.entry(f.name.clone()).or_default().push(id);
                by_def.insert((mi, fi), id);
            }
        }
        Symbols { fns, by_name, by_def }
    }

    pub fn id_of(&self, model: usize, fnidx: usize) -> Option<FnId> {
        self.by_def.get(&(model, fnidx)).copied()
    }

    /// All definitions with `name` (unfiltered).
    pub fn defs_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Extract the call sites inside token range `(open, close)` of
    /// `model` (exclusive of the braces themselves). Skipped regions
    /// (`#[cfg(test)]` bodies) are excluded.
    pub fn call_sites(m: &FileModel, (open, close): (usize, usize)) -> Vec<CallSite> {
        let toks = &m.toks;
        let mut out = Vec::new();
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            let callable = t.kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is("("))
                && !(i > 0 && toks[i - 1].is_ident("fn"))
                && !m.skipped(i);
            if !callable {
                i += 1;
                continue;
            }
            // Qualifier: walk back over `seg ::` pairs.
            let mut segs: Vec<String> = Vec::new();
            let mut j = i;
            while j >= 2 && toks[j - 1].is(":") && toks[j - 2].is(":") {
                // Closing `>` of a turbofish ends the path walk.
                let Some(prev) = j.checked_sub(3).map(|p| &toks[p]) else { break };
                if prev.kind == TokKind::Ident {
                    segs.push(prev.text.clone());
                    j -= 3;
                } else {
                    break;
                }
            }
            segs.reverse();
            let kind = if !segs.is_empty() {
                CallKind::Path(segs)
            } else if i > 0 && toks[i - 1].is(".") {
                CallKind::Method
            } else {
                CallKind::Bare
            };
            out.push(CallSite {
                tok: i,
                line: t.line,
                name: t.text.clone(),
                kind,
            });
            i += 1;
        }
        out
    }

    /// Resolve a call site in `models[caller_model]` to candidate
    /// definitions. Returns flat fn ids; empty when the target is
    /// external (std, vendored deps) or stoplisted.
    pub fn resolve(
        &self,
        models: &[FileModel],
        caller_model: usize,
        caller_impl: Option<&str>,
        site: &CallSite,
    ) -> Vec<FnId> {
        let caller = &models[caller_model];
        match &site.kind {
            CallKind::Path(segs) => {
                // Expand a leading `use` alias: `alias::f(…)` where
                // `use a::b as alias` → `a::b::f(…)`.
                let mut segs = segs.clone();
                if let Some(expansion) = caller.uses.get(&segs[0]) {
                    let mut full = expansion.clone();
                    full.extend(segs.drain(1..));
                    segs = full;
                }
                // `Self::f` pins the caller's own impl type.
                let type_seg = match segs.last().map(String::as_str) {
                    Some("Self") => caller_impl.map(str::to_string),
                    Some(s) if s.chars().next().is_some_and(char::is_uppercase) => {
                        Some(s.to_string())
                    }
                    _ => None,
                };
                // Crate scope from the first segment.
                let crate_scope = match segs[0].as_str() {
                    "crate" | "self" | "super" => Some(caller.crate_name.clone()),
                    s if models.iter().any(|m| m.crate_name == s) => Some(s.to_string()),
                    "std" | "core" | "alloc" => return Vec::new(),
                    _ => None,
                };
                // A path that pins neither a crate nor a type
                // (`u64::from(…)`, `mem::swap(…)`) carries no more
                // information than a bare call — stoplisted names would
                // fan out to every unrelated definition.
                if crate_scope.is_none()
                    && type_seg.is_none()
                    && CALL_STOPLIST.contains(&site.name.as_str())
                {
                    return Vec::new();
                }
                let mut cands: Vec<FnId> = self
                    .defs_named(&site.name)
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id];
                        crate_scope.as_deref().is_none_or(|c| f.crate_name == c)
                            && type_seg
                                .as_deref()
                                .is_none_or(|t| f.impl_type.as_deref() == Some(t))
                    })
                    .collect();
                // An unpinned path (`module::f`) with no workspace-crate
                // prefix could be anything; prefer same-crate if present.
                if crate_scope.is_none() && type_seg.is_none() {
                    let local: Vec<FnId> = cands
                        .iter()
                        .copied()
                        .filter(|&id| self.fns[id].crate_name == caller.crate_name)
                        .collect();
                    if !local.is_empty() {
                        cands = local;
                    }
                }
                cands
            }
            CallKind::Method => {
                if CALL_STOPLIST.contains(&site.name.as_str()) {
                    return Vec::new();
                }
                // Methods resolve by name across impl blocks workspace-
                // wide: the receiver's type is unknown lexically, and
                // cross-crate method calls (e.g. sched calling an mvcc
                // engine method) are exactly what v1 missed.
                self.defs_named(&site.name)
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].impl_type.is_some())
                    .collect()
            }
            CallKind::Bare => {
                if CALL_STOPLIST.contains(&site.name.as_str()) {
                    return Vec::new();
                }
                let defs = self.defs_named(&site.name);
                // A `use`d free function resolves to its source crate.
                if let Some(path) = caller.uses.get(&site.name) {
                    if let Some(krate) =
                        path.first().filter(|s| models.iter().any(|m| m.crate_name == **s))
                    {
                        let from_crate: Vec<FnId> = defs
                            .iter()
                            .copied()
                            .filter(|&id| self.fns[id].crate_name == *krate)
                            .collect();
                        if !from_crate.is_empty() {
                            return from_crate;
                        }
                    }
                    if path.first().map(String::as_str) == Some("std") {
                        return Vec::new();
                    }
                }
                let same_file: Vec<FnId> = defs
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].model == caller_model)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<FnId> = defs
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].crate_name == caller.crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                defs.to_vec()
            }
        }
    }
}

/// The resolved call graph: per function, its call sites with candidate
/// callees. Built once and shared by the region, lock-order, and handler
/// passes.
pub struct CallGraph {
    /// `edges[f]` = the call sites in `f`'s body with resolved targets.
    pub edges: Vec<Vec<(CallSite, Vec<FnId>)>>,
}

impl CallGraph {
    pub fn build(models: &[FileModel], syms: &Symbols) -> CallGraph {
        let mut edges = Vec::with_capacity(syms.fns.len());
        for f in &syms.fns {
            let m = &models[f.model];
            let sites = Symbols::call_sites(m, f.body);
            let resolved = sites
                .into_iter()
                .map(|s| {
                    let targets = syms.resolve(models, f.model, f.impl_type.as_deref(), &s);
                    (s, targets)
                })
                .collect();
            edges.push(resolved);
        }
        CallGraph { edges }
    }

    /// Breadth-first walk from `roots`, invoking `visit` for every
    /// reached function with the call path (flat fn ids, root first).
    /// `max_depth` bounds the chain length; `visit` returning `false`
    /// stops expansion *through* that node (its body is not walked).
    pub fn walk<F: FnMut(FnId, &[FnId]) -> bool>(
        &self,
        roots: &[FnId],
        max_depth: usize,
        mut visit: F,
    ) {
        use std::collections::{HashSet, VecDeque};
        let mut seen: HashSet<FnId> = HashSet::new();
        let mut queue: VecDeque<(FnId, Vec<FnId>)> = VecDeque::new();
        for &r in roots {
            if seen.insert(r) {
                queue.push_back((r, vec![r]));
            }
        }
        while let Some((id, path)) = queue.pop_front() {
            if !visit(id, &path) || path.len() > max_depth {
                continue;
            }
            for (_, targets) in &self.edges[id] {
                for &t in targets {
                    if seen.insert(t) {
                        let mut p = path.clone();
                        p.push(t);
                        queue.push_back((t, p));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(srcs: &[(&str, &str)]) -> (Vec<FileModel>, Symbols) {
        let models: Vec<FileModel> =
            srcs.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let syms = Symbols::build(&models);
        (models, syms)
    }

    fn names_of(syms: &Symbols, ids: &[FnId]) -> Vec<String> {
        let mut v: Vec<String> =
            ids.iter().map(|&id| format!("{}::{}", syms.fns[id].crate_name, syms.fns[id].name)).collect();
        v.sort();
        v
    }

    #[test]
    fn crate_qualified_paths_resolve_cross_crate() {
        let (models, syms) = build(&[
            (
                "crates/sched/src/a.rs",
                "fn caller() { preempt_mvcc::helper(); crate::local(); }\nfn local() {}\n",
            ),
            ("crates/mvcc/src/b.rs", "pub fn helper() {}\nfn local() {}\n"),
        ]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        assert_eq!(sites.len(), 2);
        let r0 = syms.resolve(&models, 0, None, &sites[0]);
        assert_eq!(names_of(&syms, &r0), vec!["preempt_mvcc::helper"]);
        let r1 = syms.resolve(&models, 0, None, &sites[1]);
        assert_eq!(names_of(&syms, &r1), vec!["preempt_sched::local"]);
    }

    #[test]
    fn use_aliased_bare_calls_resolve_to_source_crate() {
        let (models, syms) = build(&[
            (
                "crates/sched/src/a.rs",
                "use preempt_context::runtime::preempt_point;\nfn caller() { preempt_point(1); }\n",
            ),
            ("crates/context/src/runtime.rs", "pub fn preempt_point(_c: u64) {}\n"),
            ("crates/workloads/src/x.rs", "pub fn preempt_point(_c: u64) {}\n"),
        ]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        let r = syms.resolve(&models, 0, None, &sites[0]);
        assert_eq!(names_of(&syms, &r), vec!["preempt_context::preempt_point"]);
    }

    #[test]
    fn type_qualified_calls_ignore_stoplist() {
        let (models, syms) = build(&[
            (
                "crates/sched/src/a.rs",
                "fn caller(u: &Upid) { Upid::new(); }\n",
            ),
            (
                "crates/uintr/src/upid.rs",
                "struct Upid;\nimpl Upid { pub fn new() -> Upid { Upid } }\nstruct Other;\nimpl Other { pub fn new() -> Other { Other } }\n",
            ),
        ]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        let r = syms.resolve(&models, 0, None, &sites[0]);
        assert_eq!(r.len(), 1);
        assert_eq!(syms.fns[r[0]].impl_type.as_deref(), Some("Upid"));
    }

    #[test]
    fn method_calls_resolve_across_crates_minus_stoplist() {
        let (models, syms) = build(&[
            ("crates/sched/src/a.rs", "fn caller(e: &E) { e.orphan_sweep(2); e.load(); }\n"),
            (
                "crates/mvcc/src/engine.rs",
                "struct Engine;\nimpl Engine { pub fn orphan_sweep(&self, _o: u64) {} pub fn load(&self) {} }\n",
            ),
        ]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        let r0 = syms.resolve(&models, 0, None, &sites[0]);
        assert_eq!(names_of(&syms, &r0), vec!["preempt_mvcc::orphan_sweep"]);
        let r1 = syms.resolve(&models, 0, None, &sites[1]);
        assert!(r1.is_empty(), "`.load(…)` is stoplisted");
    }

    #[test]
    fn unpinned_paths_respect_the_stoplist() {
        // `u64::from(x)` pins neither a crate nor a (workspace) type:
        // it must not fan out to every `From` impl in the tree.
        let (models, syms) = build(&[
            ("crates/trace/src/event.rs", "fn encode(v: u8) -> u64 { u64::from(v) }\n"),
            (
                "crates/uintr/src/signal.rs",
                "struct DeliveryError;\nimpl From<DeliveryError> for Error { fn from(e: DeliveryError) -> Error { panic!() } }\n",
            ),
        ]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        assert_eq!(sites.len(), 1);
        let r = syms.resolve(&models, 0, None, &sites[0]);
        assert!(r.is_empty(), "{:?}", names_of(&syms, &r));
    }

    #[test]
    fn self_paths_pin_the_impl_type() {
        let (models, syms) = build(&[(
            "crates/mvcc/src/latch.rs",
            "struct Latch;\nimpl Latch { fn read(&self) { Self::spin_once(0); } fn spin_once(_s: u64) {} }\n\
             struct Other;\nimpl Other { fn spin_once(_s: u64) {} }\n",
        )]);
        let sites = Symbols::call_sites(&models[0], models[0].fns[0].body.unwrap());
        let r = syms.resolve(&models, 0, Some("Latch"), &sites[0]);
        assert_eq!(r.len(), 1);
        assert_eq!(syms.fns[r[0]].impl_type.as_deref(), Some("Latch"));
    }

    #[test]
    fn walk_visits_transitively_with_paths() {
        let (models, syms) = build(&[(
            "crates/a/src/l.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let graph = CallGraph::build(&models, &syms);
        let root = syms.defs_named("root")[0];
        let mut seen = Vec::new();
        graph.walk(&[root], 8, |id, path| {
            seen.push((syms.fns[id].name.clone(), path.len()));
            true
        });
        assert_eq!(
            seen,
            vec![
                ("root".to_string(), 1),
                ("mid".to_string(), 2),
                ("leaf".to_string(), 3)
            ]
        );
    }
}
