//! Inferred non-preemptible regions.
//!
//! A critical section is not a lexical window: it is the *lifetime of a
//! guard value* — a latch read/write guard, a `NonPreemptGuard`, the
//! provisional span of a registry slot, or a `ClsCell::with` borrow —
//! and it covers every function the guard's scope calls into. This pass
//! derives those regions from the per-file guard bindings (model.rs) and
//! flags preemption points reached while one is live:
//!
//! * **directly** — a `preempt_point`/`poll`/`yield_now` token inside
//!   the guard's lexical scope (the v1 check, kept);
//! * **interprocedurally** — a call site inside the scope whose resolved
//!   callee reaches, through the workspace call graph, a function that
//!   contains a preemption point. The finding is anchored at the call
//!   site (where the `allow` belongs and where the fix goes: drop the
//!   guard first or mark the callee preempt-free) and the message spells
//!   out the call chain down to the offending point.
//!
//! `CALL_STOPLIST` names never expand, which is what keeps
//! `Latch::read`'s own bounded spin (it polls `preempt_point` while
//! *waiting*, before the guard exists) from tainting every acquisition
//! site.

use crate::lexer::TokKind;
use crate::model::{FileModel, GuardKind};
use crate::resolve::{CallGraph, CallSite, FnId, Symbols};
use crate::rules::{Finding, PREEMPT_POINTS};

/// Maximum call-chain length from a region call site to a preemption
/// point. Deep chains are almost certainly false resolution fanout; real
/// violations sit one or two hops away.
const MAX_CHAIN: usize = 8;

/// A region to scan: token range plus a human description.
struct Region<'a> {
    m: &'a FileModel,
    model_idx: usize,
    /// Token range `(start, end)`, exclusive of `end`.
    span: (usize, usize),
    what: String,
    opened_line: u32,
}

pub fn check(models: &[FileModel], syms: &Symbols, graph: &CallGraph, out: &mut Vec<Finding>) {
    let regions = collect_regions(models);
    let (next_hop, point_line) = preempt_reachability(models, syms, graph);

    for r in &regions {
        scan_direct(r, out);
        scan_calls(r, models, syms, &next_hop, &point_line, out);
    }
}

fn collect_regions(models: &[FileModel]) -> Vec<Region<'_>> {
    // ClsCell statics are looked up workspace-wide: orphan tagging reads
    // `CURRENT_OWNER` from another crate via a re-export.
    let cls_names: std::collections::HashSet<&str> = models
        .iter()
        .flat_map(|m| m.cls_statics.iter().map(String::as_str))
        .collect();

    let mut out = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        for g in &m.guards {
            let what = match g.kind {
                GuardKind::Latch => format!("latch guard (`{}`)", g.key),
                GuardKind::NonPreempt => "nonpreempt region".to_string(),
                GuardKind::Registry => "registry provisional window".to_string(),
            };
            out.push(Region {
                m,
                model_idx: mi,
                span: (g.start, g.end.min(m.toks.len())),
                what,
                opened_line: g.line,
            });
        }
        // `NAME.with(|…| …)` on a ClsCell static: the closure runs under
        // the cell's reentrancy guard — a preemption inside it lets the
        // handler's own `.with` trip the re-entry panic.
        for i in 0..m.toks.len().saturating_sub(3) {
            if m.skipped(i) {
                continue;
            }
            let t = &m.toks[i];
            if t.kind == TokKind::Ident
                && cls_names.contains(t.text.as_str())
                && m.toks[i + 1].is(".")
                && m.toks[i + 2].is_ident("with")
                && m.toks[i + 3].is("(")
            {
                if let Some(close) = matching_paren_unbounded(m, i + 3) {
                    out.push(Region {
                        m,
                        model_idx: mi,
                        span: (i + 3, close),
                        what: format!("CLS borrow (`{}.with`)", t.text),
                        opened_line: t.line,
                    });
                }
            }
        }
    }
    out
}

/// Like `FileModel::matching_paren` but without the 512-token bound:
/// `.with` closure bodies can be long.
fn matching_paren_unbounded(m: &FileModel, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in m.toks[open..].iter().enumerate() {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// The v1 lexical check: a preemption-point token inside the region.
fn scan_direct(r: &Region<'_>, out: &mut Vec<Finding>) {
    let m = r.m;
    for i in r.span.0..r.span.1 {
        if m.skipped(i) {
            continue;
        }
        let t = &m.toks[i];
        if t.kind == TokKind::Ident
            && PREEMPT_POINTS.contains(&t.text.as_str())
            && m.toks.get(i + 1).is_some_and(|n| n.is("("))
            && !(i > 0 && m.toks[i - 1].is_ident("fn"))
        {
            out.push(Finding {
                file: m.path.clone(),
                line: t.line,
                rule: "preempt-in-critical",
                msg: format!(
                    "`{}` called inside a {} opened at line {}; a preemption here \
                     could park the holder",
                    t.text, r.what, r.opened_line
                ),
            });
        }
    }
}

/// Multi-source reverse BFS from every function containing a direct
/// preemption point. Returns, per function, the next hop toward a
/// preemption point (`next_hop[f] == Some(f)` marks a function that
/// contains one itself) and the line of each containing function's point.
fn preempt_reachability(
    models: &[FileModel],
    syms: &Symbols,
    graph: &CallGraph,
) -> (Vec<Option<FnId>>, Vec<Option<u32>>) {
    let n = syms.fns.len();
    let mut point_line: Vec<Option<u32>> = vec![None; n];
    for (id, f) in syms.fns.iter().enumerate() {
        let m = &models[f.model];
        for i in f.body.0 + 1..f.body.1 {
            if m.skipped(i) {
                continue;
            }
            let t = &m.toks[i];
            if t.kind == TokKind::Ident
                && PREEMPT_POINTS.contains(&t.text.as_str())
                && m.toks.get(i + 1).is_some_and(|x| x.is("("))
                && !(i > 0 && m.toks[i - 1].is_ident("fn"))
            {
                point_line[id] = Some(t.line);
                break;
            }
        }
    }

    // Reverse edges: callee → callers.
    let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for (caller, sites) in graph.edges.iter().enumerate() {
        for (_, targets) in sites {
            for &t in targets {
                rev[t].push(caller);
            }
        }
    }

    let mut next_hop: Vec<Option<FnId>> = vec![None; n];
    let mut depth: Vec<usize> = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for id in 0..n {
        if point_line[id].is_some() {
            next_hop[id] = Some(id);
            depth[id] = 0;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        if depth[id] >= MAX_CHAIN {
            continue;
        }
        for &caller in &rev[id] {
            if next_hop[caller].is_none() {
                next_hop[caller] = Some(id);
                depth[caller] = depth[id] + 1;
                queue.push_back(caller);
            }
        }
    }
    (next_hop, point_line)
}

/// The interprocedural check: call sites inside the region whose callees
/// reach a preemption point.
fn scan_calls(
    r: &Region<'_>,
    models: &[FileModel],
    syms: &Symbols,
    next_hop: &[Option<FnId>],
    point_line: &[Option<u32>],
    out: &mut Vec<Finding>,
) {
    let m = r.m;
    let caller_impl = m.impl_type_at(r.span.0).map(str::to_string);
    // `Symbols::call_sites` walks `(a+1, b)`, which is exactly the
    // region interior for both guard spans (`;` → scope end) and CLS
    // closure spans (`(` → `)`).
    let sites: Vec<CallSite> = Symbols::call_sites(m, r.span)
        .into_iter()
        // A direct preemption point is scan_direct's finding, not a chain.
        .filter(|s| !PREEMPT_POINTS.contains(&s.name.as_str()))
        .collect();
    let mut seen_lines = std::collections::HashSet::new();
    for s in sites {
        let targets = syms.resolve(models, r.model_idx, caller_impl.as_deref(), &s);
        let Some(&hit) = targets.iter().find(|&&t| next_hop[t].is_some()) else {
            continue;
        };
        // One finding per (line, region): a line calling two tainted
        // callees is still one fix.
        if !seen_lines.insert(s.line) {
            continue;
        }
        // Reconstruct the chain hit → … → point-containing fn.
        let mut chain = vec![hit];
        let mut cur = hit;
        while next_hop[cur] != Some(cur) {
            cur = next_hop[cur].expect("hop chain ends at a point-containing fn");
            chain.push(cur);
        }
        let last = *chain.last().unwrap();
        let chain_str = chain
            .iter()
            .map(|&id| format!("`{}`", syms.fns[id].name))
            .collect::<Vec<_>>()
            .join(" → ");
        out.push(Finding {
            file: m.path.clone(),
            line: s.line,
            rule: "preempt-in-critical",
            msg: format!(
                "call to {chain_str} inside a {} opened at line {} reaches a \
                 preemption point at {}:{}; drop the guard first or keep the \
                 callee preempt-free",
                r.what,
                r.opened_line,
                models[syms.fns[last].model].path,
                point_line[last].unwrap_or(syms.fns[last].line),
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::resolve::{CallGraph, Symbols};

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let models: Vec<FileModel> =
            srcs.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let syms = Symbols::build(&models);
        let graph = CallGraph::build(&models, &syms);
        let mut out = Vec::new();
        check(&models, &syms, &graph, &mut out);
        out
    }

    #[test]
    fn guard_held_across_call_is_interprocedural() {
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "fn hold(r: &Record) {\n    let _g = r.latch.write();\n    refresh(r);\n}\n\
             fn refresh(r: &Record) { recompute(r); preempt_point(0); }\n\
             fn recompute(_r: &Record) {}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "preempt-in-critical");
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("`refresh`"), "{}", f[0].msg);
    }

    #[test]
    fn chain_crosses_crates() {
        let f = run(&[
            (
                "crates/sched/src/a.rs",
                "fn hold(e: &Engine) {\n    let _np = NonPreemptGuard::enter();\n    e.orphan_sweep(1);\n}\n",
            ),
            (
                "crates/mvcc/src/engine.rs",
                "struct Engine;\nimpl Engine {\n    pub fn orphan_sweep(&self, _o: u64) { helper(); }\n}\n\
                 fn helper() { preempt_point(0); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].msg.contains("`orphan_sweep` → `helper`"), "{}", f[0].msg);
    }

    #[test]
    fn dropped_guard_does_not_taint_later_calls() {
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "fn ok(r: &Record) {\n    let g = r.latch.write();\n    drop(g);\n    refresh(r);\n}\n\
             fn refresh(_r: &Record) { preempt_point(0); }\n",
        )]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn cls_with_closure_is_a_region() {
        let f = run(&[(
            "crates/mvcc/src/orphan.rs",
            "static CURRENT_OWNER: ClsCell<u64> = ClsCell::new(|| 0);\n\
             fn tag() {\n    CURRENT_OWNER.with(|o| {\n        preempt_point(0);\n        o\n    });\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].msg.contains("CLS borrow"), "{}", f[0].msg);
    }

    #[test]
    fn stoplisted_methods_do_not_expand() {
        // `Latch::read` contains a preemption point in its spin loop, but
        // `.read()` is stoplisted: acquiring a latch inside a nonpreempt
        // region must not flag.
        let f = run(&[(
            "crates/mvcc/src/latch.rs",
            "struct Latch;\nimpl Latch {\n    pub fn read(&self) { preempt_point(1); }\n}\n\
             fn acquire(l: &Latch) {\n    let _np = NonPreemptGuard::enter();\n    let _x = l.read();\n}\n",
        )]);
        // The `let _x = l.read()` has no `latch` ident so it is not a
        // latch guard binding; the nonpreempt region must not expand
        // through `.read()`.
        assert!(f.is_empty(), "{f:#?}");
    }
}
