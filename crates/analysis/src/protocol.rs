//! Declarative atomic-protocol specifications.
//!
//! The engine's lock-free handoffs are five small protocols; each has an
//! exact ordering contract per (field, op) and a loom model that
//! explores its interleavings. v1 enforced a *deny*-list (specific bad
//! orderings); this table is an *allow*-list with coverage: every atomic
//! op touching a governed field must match a spec row, and every spec'd
//! orderings set is exhaustive. Adding a new op on `pending` without
//! extending the table is itself a finding — the spec, the code, and the
//! models cannot silently drift apart:
//!
//! * `protocol-ordering`    — an op uses an ordering outside its row's
//!   allow set, or touches a governed field with no row at all;
//! * `protocol-model-drift` — a protocol's loom model function is
//!   missing from the loom suite, or no longer mentions the identifiers
//!   the protocol is about (the model was renamed or hollowed out).
//!
//! The vendored loom stub explores sequentially-consistent
//! interleavings; orderings stronger than SC cannot be distinguished
//! dynamically, which is exactly why the static allow-list and the
//! model-existence check are two halves of one gate.

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::rules::Finding;

/// One row: the only orderings `field.op(…)` may use in `file`.
pub struct SpecRow {
    pub protocol: &'static str,
    /// Base file name the row governs (`upid.rs`, `worker.rs`, …).
    pub file: &'static str,
    pub field: &'static str,
    pub op: &'static str,
    pub allow: &'static [&'static str],
    pub why: &'static str,
}

/// A protocol's loom model: the test fn that must exist in the loom
/// suite and the identifiers its body must still mention.
pub struct ModelRef {
    pub protocol: &'static str,
    pub model_fn: &'static str,
    pub idents: &'static [&'static str],
}

/// The five protocols (DESIGN.md §12–§13). Governed fields are closed per
/// file: any ordering-bearing atomic op on a listed field that has no
/// row here is flagged until the table is extended.
pub const SPEC: &[SpecRow] = &[
    // ── UPID pending-bit post/take/repost ────────────────────────────
    SpecRow {
        protocol: "upid-pending",
        file: "upid.rs",
        field: "pending",
        op: "fetch_or",
        allow: &["Release"],
        why: "posting a vector publishes the sender's writes",
    },
    SpecRow {
        protocol: "upid-pending",
        file: "upid.rs",
        field: "pending",
        op: "swap",
        allow: &["Acquire"],
        why: "draining must observe the sender's writes",
    },
    SpecRow {
        protocol: "upid-pending",
        file: "upid.rs",
        field: "pending",
        op: "load",
        allow: &["Relaxed"],
        why: "fast-path emptiness probe; the subsequent swap is authoritative",
    },
    SpecRow {
        protocol: "upid-pending",
        file: "upid.rs",
        field: "active",
        op: "store",
        allow: &["Release"],
        why: "deactivation is ordered after teardown writes",
    },
    SpecRow {
        protocol: "upid-pending",
        file: "upid.rs",
        field: "active",
        op: "load",
        allow: &["Acquire"],
        why: "the active check gates posting into freed state",
    },
    // ── Epoch/ack delivery watchdog ──────────────────────────────────
    SpecRow {
        protocol: "watchdog-epoch-ack",
        file: "scheduler.rs",
        field: "uintr_epoch",
        op: "fetch_add",
        allow: &["Release"],
        why: "the epoch bump must happen-before the UPID post",
    },
    SpecRow {
        protocol: "watchdog-epoch-ack",
        file: "scheduler.rs",
        field: "uintr_epoch",
        op: "load",
        allow: &["Acquire"],
        why: "watchdog comparison against the ack",
    },
    SpecRow {
        protocol: "watchdog-epoch-ack",
        file: "scheduler.rs",
        field: "uintr_ack",
        op: "load",
        allow: &["Acquire"],
        why: "watchdog comparison against the epoch",
    },
    SpecRow {
        protocol: "watchdog-epoch-ack",
        file: "worker.rs",
        field: "uintr_epoch",
        op: "load",
        allow: &["Acquire"],
        why: "the ack must copy an epoch no older than the delivered post",
    },
    SpecRow {
        protocol: "watchdog-epoch-ack",
        file: "worker.rs",
        field: "uintr_ack",
        op: "store",
        allow: &["Release"],
        why: "publishing the ack races the watchdog's re-send decision",
    },
    // ── Degraded-mode flag ───────────────────────────────────────────
    SpecRow {
        protocol: "degraded",
        file: "scheduler.rs",
        field: "degraded",
        op: "store",
        allow: &["Release"],
        why: "degraded-mode entry publishes the wake-fallback configuration",
    },
    SpecRow {
        protocol: "degraded",
        file: "worker.rs",
        field: "degraded",
        op: "load",
        allow: &["Acquire"],
        why: "pairs with the scheduler's Release store on mode entry",
    },
    // ── Terminate / exited / supervision lifecycle ───────────────────
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "stopped",
        op: "store",
        allow: &["Release"],
        why: "the stop flag publishes queue teardown",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "stopped",
        op: "load",
        allow: &["Acquire"],
        why: "observing stop must also observe teardown",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "terminated",
        op: "store",
        allow: &["Release"],
        why: "the terminate order must be visible at the next preemption point",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "terminated",
        op: "load",
        allow: &["Acquire"],
        why: "terminate-token eligibility check",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "exited",
        op: "store",
        allow: &["Release"],
        why: "the exit flag publishes every release the worker performed",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "exited",
        op: "load",
        allow: &["Acquire"],
        why: "the supervisor orphan-sweeps only after observing exit",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "incarnation",
        op: "load",
        allow: &["Acquire"],
        why: "lease checks compare against the published incarnation",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "worker.rs",
        field: "incarnation",
        op: "fetch_add",
        allow: &["AcqRel"],
        why: "respawn both observes the old lease and publishes the new one",
    },
    SpecRow {
        protocol: "terminate-exited",
        file: "scheduler.rs",
        field: "incarnation",
        op: "load",
        allow: &["Acquire"],
        why: "respawn-budget check against the published incarnation",
    },
    // ── Sharded steal deque (DESIGN.md §13) ──────────────────────────
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "state",
        op: "load",
        allow: &["Acquire"],
        why: "a claim attempt must observe the ticket/len published by racing claims",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "state",
        op: "compare_exchange",
        allow: &["AcqRel", "Acquire"],
        why: "a successful claim both acquires prior transitions of the packed \
              word and releases its ticket/len update to racing claimants",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "seq",
        op: "load",
        allow: &["Acquire"],
        why: "a handoff waiting on its claim's phase stamp must observe the \
              slot writes that published the stamp",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "seq",
        op: "compare_exchange",
        allow: &["AcqRel", "Acquire"],
        why: "winning a phase transition acquires the previous phase's slot \
              writes and publishes this claim's exclusive ownership",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "seq",
        op: "store",
        allow: &["Release"],
        why: "publishing FULL or re-opening EMPTY must happen-after the \
              deposit or drain it covers",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "slot",
        op: "store",
        allow: &["Release"],
        why: "publishing the request pointer must happen-after its construction",
    },
    SpecRow {
        protocol: "shard-deque",
        file: "deque.rs",
        field: "slot",
        op: "swap",
        allow: &["Acquire"],
        why: "taking a claimed slot must observe the producer's request writes",
    },
];

/// Every protocol must keep a live loom model. `idents` are searched in
/// the model fn's body tokens.
pub const MODELS: &[ModelRef] = &[
    ModelRef {
        protocol: "upid-pending",
        model_fn: "pending_bit_post_is_never_lost",
        idents: &["post", "take_pending"],
    },
    ModelRef {
        protocol: "upid-pending",
        model_fn: "repost_preserves_vectors_under_concurrency",
        idents: &["repost"],
    },
    ModelRef {
        protocol: "watchdog-epoch-ack",
        model_fn: "epoch_ack_watchdog_has_no_lost_wakeup_or_double_execution",
        idents: &["epoch", "ack", "pending"],
    },
    ModelRef {
        protocol: "degraded",
        model_fn: "degraded_entry_publishes_wake_fallback",
        idents: &["degraded"],
    },
    ModelRef {
        protocol: "terminate-exited",
        model_fn: "terminate_exit_flag_gates_orphan_sweep",
        idents: &["terminated", "exited", "sweep"],
    },
    ModelRef {
        protocol: "shard-deque",
        model_fn: "steal_deque_no_lost_or_duplicated_requests",
        idents: &["state", "slot", "steal"],
    },
    ModelRef {
        protocol: "shard-deque",
        model_fn: "steal_deque_slot_reuse_pairs_handoffs",
        idents: &["seq", "steal", "push"],
    },
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Check every `field.op(…)` in the governed files against the table.
pub fn check_orderings(models: &[FileModel], out: &mut Vec<Finding>) {
    for m in models {
        let base = m.path.rsplit('/').next().unwrap_or(&m.path);
        let rows: Vec<&SpecRow> = SPEC.iter().filter(|r| r.file == base).collect();
        if rows.is_empty() {
            continue;
        }
        let governed: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.field).collect();
        for i in 0..m.toks.len().saturating_sub(3) {
            if m.skipped(i) {
                continue;
            }
            let [f, dot, op, paren] =
                [&m.toks[i], &m.toks[i + 1], &m.toks[i + 2], &m.toks[i + 3]];
            if f.kind != TokKind::Ident
                || !dot.is(".")
                || op.kind != TokKind::Ident
                || !paren.is("(")
                || !governed.contains(f.text.as_str())
            {
                continue;
            }
            // Only the call's own orderings (paren depth 1) count: a
            // nested `x.load(Acquire)` argument is matched at its own
            // position, not attributed to the outer op.
            let ords = orderings_at_depth1(m, i + 3);
            if ords.is_empty() {
                continue; // not an atomic op (`.is_empty()` on a field, …)
            }
            match rows.iter().find(|r| r.field == f.text && r.op == op.text) {
                Some(row) => {
                    for ord in ords {
                        if !row.allow.contains(&ord) {
                            out.push(Finding {
                                file: m.path.clone(),
                                line: f.line,
                                rule: "protocol-ordering",
                                msg: format!(
                                    "`{}.{}` uses Ordering::{}, but the {} protocol \
                                     requires {:?}: {}",
                                    row.field, row.op, ord, row.protocol, row.allow, row.why
                                ),
                            });
                        }
                    }
                }
                None => {
                    out.push(Finding {
                        file: m.path.clone(),
                        line: f.line,
                        rule: "protocol-ordering",
                        msg: format!(
                            "`{}.{}` touches protocol field `{}` but has no spec row; \
                             extend the protocol table (crates/analysis/src/protocol.rs) \
                             with the required ordering",
                            f.text, op.text, f.text
                        ),
                    });
                }
            }
        }
    }
}

/// Orderings appearing at paren depth 1 of the call whose `(` is at
/// `open` (i.e. the call's own arguments, not nested calls').
fn orderings_at_depth1(m: &FileModel, open: usize) -> Vec<&str> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    for t in &m.toks[open..] {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if depth == 1
                && t.kind == TokKind::Ident
                && ORDERINGS.contains(&t.text.as_str()) =>
            {
                out.push(t.text.as_str())
            }
            _ => {}
        }
    }
    out
}

/// Cross-validate the spec table against the loom suite: every protocol's
/// model fn must exist and still mention its protocol identifiers.
pub fn check_models(loom: &FileModel, out: &mut Vec<Finding>) {
    for mr in MODELS {
        let Some(f) = loom.fns.iter().find(|f| f.name == mr.model_fn) else {
            out.push(Finding {
                file: loom.path.clone(),
                line: 1,
                rule: "protocol-model-drift",
                msg: format!(
                    "loom model `{}` for protocol {} is missing; the spec table \
                     requires a live interleaving model per protocol",
                    mr.model_fn, mr.protocol
                ),
            });
            continue;
        };
        let Some((open, close)) = f.body else { continue };
        for ident in mr.idents {
            let found = loom.toks[open..=close]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains(ident));
            if !found {
                out.push(Finding {
                    file: loom.path.clone(),
                    line: f.line,
                    rule: "protocol-model-drift",
                    msg: format!(
                        "loom model `{}` no longer mentions `{}`; it has drifted \
                         from the {} protocol it is supposed to explore",
                        mr.model_fn, ident, mr.protocol
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let m = FileModel::build(path, src);
        let mut out = Vec::new();
        check_orderings(&[m], &mut out);
        out
    }

    #[test]
    fn wrong_ordering_is_flagged() {
        let f = run(
            "crates/uintr/src/upid.rs",
            "fn post(p: &U) { p.pending.fetch_or(1, Ordering::Relaxed); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "protocol-ordering");
        assert!(f[0].msg.contains("upid-pending"));
    }

    #[test]
    fn unspecced_op_on_governed_field_is_flagged() {
        let f = run(
            "crates/uintr/src/upid.rs",
            "fn clear(p: &U) { p.pending.fetch_and(0, Ordering::Release); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].msg.contains("no spec row"), "{}", f[0].msg);
    }

    #[test]
    fn nested_call_orderings_are_not_misattributed() {
        // `uintr_ack.store(uintr_epoch.load(Acquire), Release)`: the
        // Acquire belongs to the inner load, not the outer store.
        let f = run(
            "crates/sched/src/worker.rs",
            "fn ack(s: &S) { s.uintr_ack.store(s.uintr_epoch.load(Ordering::Acquire), Ordering::Release); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn non_atomic_method_on_governed_field_is_ignored() {
        let f = run(
            "crates/uintr/src/upid.rs",
            "fn probe(p: &U) -> bool { p.pending.is_set() }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn ungoverned_files_are_unconstrained() {
        let f = run(
            "crates/metrics/src/counters.rs",
            "fn bump(c: &C) { c.pending.fetch_or(1, Ordering::Relaxed); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn missing_model_is_drift() {
        let loom = FileModel::build(
            "crates/uintr/tests/loom.rs",
            "fn pending_bit_post_is_never_lost() { post(); take_pending(); }\n",
        );
        let mut out = Vec::new();
        check_models(&loom, &mut out);
        assert!(
            out.iter().any(|f| f.rule == "protocol-model-drift"
                && f.msg.contains("terminate_exit_flag_gates_orphan_sweep")),
            "{out:#?}"
        );
    }

    #[test]
    fn hollowed_out_model_is_drift() {
        let loom = FileModel::build(
            "crates/uintr/tests/loom.rs",
            "fn degraded_entry_publishes_wake_fallback() { let x = 1; }\n",
        );
        let mut out = Vec::new();
        check_models(&loom, &mut out);
        assert!(
            out.iter().any(|f| f.rule == "protocol-model-drift"
                && f.msg.contains("degraded_entry_publishes_wake_fallback")
                && f.msg.contains("drifted")),
            "{out:#?}"
        );
    }

    #[test]
    fn spec_covers_all_five_protocols_with_models() {
        use std::collections::HashSet;
        let spec: HashSet<&str> = SPEC.iter().map(|r| r.protocol).collect();
        let modeled: HashSet<&str> = MODELS.iter().map(|m| m.protocol).collect();
        for p in [
            "upid-pending",
            "watchdog-epoch-ack",
            "degraded",
            "terminate-exited",
            "shard-deque",
        ] {
            assert!(spec.contains(p), "protocol {p} has no spec rows");
            assert!(modeled.contains(p), "protocol {p} has no loom model");
        }
    }
}
