//! Global latch acquisition-order graph and deadlock-cycle detection.
//!
//! v1 compared acquisition *pairs* at two sites; that misses any cycle
//! longer than two and cannot see an order established across a call.
//! This pass builds one directed graph over the whole workspace:
//!
//! * **nodes** are normalized latch keys. A `self.latch` key is
//!   qualified by the `impl` receiver type (`Record.latch`), so the same
//!   field acquired from two methods is one node and two unrelated
//!   types' `self.latch` fields are two;
//! * **edges** `A → B` mean "some site acquires `B` while holding `A`" —
//!   either lexically (a second binding inside the first guard's scope)
//!   or one call level deep (a call site inside `A`'s scope resolving to
//!   a function that acquires `B`). Each edge carries its witnessing
//!   acquisition sites.
//!
//! Every strongly connected component with a cycle becomes exactly one
//! `lock-order-cycle` finding listing the participating keys and every
//! witness, anchored at the lexically last witness (the site a fix or
//! `allow` naturally lands on).

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{FileModel, GuardKind};
use crate::resolve::Symbols;
use crate::rules::Finding;

/// One observed "B acquired while A held" site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Witness {
    file: String,
    line: u32,
    held: String,
    acquired: String,
}

pub fn check(models: &[FileModel], syms: &Symbols, out: &mut Vec<Finding>) {
    // key → key → witnesses. BTree keeps reporting deterministic.
    let mut edges: BTreeMap<String, BTreeMap<String, Vec<Witness>>> = BTreeMap::new();
    let mut add = |from: String, to: String, w: Witness| {
        edges.entry(from).or_default().entry(to).or_default().push(w);
    };

    for (mi, m) in models.iter().enumerate() {
        for (gi, g) in m.guards.iter().enumerate() {
            if g.kind != GuardKind::Latch || g.func.is_none() {
                continue;
            }
            let held = qualify(m, g.start, &g.key);
            // Lexical: a later latch binding opened inside g's scope.
            for h in &m.guards[gi + 1..] {
                if h.kind == GuardKind::Latch
                    && h.func == g.func
                    && h.start > g.start
                    && h.start < g.end
                    && g.key != h.key
                {
                    let acquired = qualify(m, h.start, &h.key);
                    add(
                        held.clone(),
                        acquired.clone(),
                        Witness { file: m.path.clone(), line: h.line, held: held.clone(), acquired },
                    );
                }
            }
            // Interprocedural, one level: a call inside g's scope whose
            // callee acquires a latch of its own. One level is exact for
            // this codebase's helper pattern and never invents an order
            // a deeper walk could only widen.
            let caller_impl = m.impl_type_at(g.start).map(str::to_string);
            let span = (g.start, g.end.min(m.toks.len()));
            for s in Symbols::call_sites(m, span) {
                for t in syms.resolve(models, mi, caller_impl.as_deref(), &s) {
                    let tf = &syms.fns[t];
                    let tm = &models[tf.model];
                    for tg in &tm.guards {
                        if tg.kind == GuardKind::Latch
                            && tg.func == syms_fnidx(syms, t)
                            && tg.start > tf.body.0
                            && tg.start < tf.body.1
                        {
                            let acquired = qualify(tm, tg.start, &tg.key);
                            if acquired == held {
                                continue; // re-entrant self-acquisition is its own bug class
                            }
                            add(
                                held.clone(),
                                acquired.clone(),
                                Witness {
                                    file: tm.path.clone(),
                                    line: tg.line,
                                    held: held.clone(),
                                    acquired,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    for scc in cyclic_sccs(&edges) {
        // Collect the intra-SCC witnesses; anchor at the lexically last.
        let mut witnesses: Vec<&Witness> = Vec::new();
        for from in &scc {
            if let Some(tos) = edges.get(from) {
                for (to, ws) in tos {
                    if scc.contains(to) {
                        witnesses.extend(ws.iter());
                    }
                }
            }
        }
        witnesses.sort();
        witnesses.dedup();
        let Some(anchor) = witnesses.iter().max_by_key(|w| (&w.file, w.line)) else {
            continue;
        };
        let keys = scc.iter().cloned().collect::<Vec<_>>().join("`, `");
        let sites = witnesses
            .iter()
            .map(|w| format!("{}:{} (`{}` while holding `{}`)", w.file, w.line, w.acquired, w.held))
            .collect::<Vec<_>>()
            .join("; ");
        out.push(Finding {
            file: anchor.file.clone(),
            line: anchor.line,
            rule: "lock-order-cycle",
            msg: format!(
                "latch acquisition-order cycle over `{keys}`: {sites}; pick one \
                 global order (DESIGN.md §12)"
            ),
        });
    }
}

/// Qualify a guard key by the `impl` receiver type when it is a
/// `self.`-relative path.
fn qualify(m: &FileModel, tok: usize, key: &str) -> String {
    if let Some(rest) = key.strip_prefix("self.") {
        if let Some(ty) = m.impl_type_at(tok) {
            return format!("{ty}.{rest}");
        }
    }
    key.to_string()
}

/// The flat-id → per-model fn index mapping (guards store the latter).
fn syms_fnidx(syms: &Symbols, id: usize) -> Option<usize> {
    Some(syms.fns[id].fnidx)
}

/// Kosaraju SCC over the edge map, returning only components that
/// actually contain a cycle (size > 1, or a self-loop).
fn cyclic_sccs(
    edges: &BTreeMap<String, BTreeMap<String, Vec<Witness>>>,
) -> Vec<BTreeSet<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, tos) in edges {
        nodes.insert(from);
        for to in tos.keys() {
            nodes.insert(to);
        }
    }
    let nodes: Vec<&str> = nodes.into_iter().collect();
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, tos) in edges {
        let f = idx[from.as_str()];
        for to in tos.keys() {
            let t = idx[to.as_str()];
            fwd[f].push(t);
            bwd[t].push(f);
        }
    }

    // Pass 1: finish order on the forward graph (iterative DFS).
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < fwd[v].len() {
                let w = fwd[v][*ei];
                *ei += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }

    // Pass 2: reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &bwd[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }

    let mut groups: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ncomp];
    for (i, &c) in comp.iter().enumerate() {
        groups[c].insert(nodes[i].to_string());
    }
    groups.retain(|g| {
        g.len() > 1
            || g.iter().any(|k| {
                edges.get(k).is_some_and(|tos| tos.contains_key(k)) // self-loop
            })
    });
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Symbols;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let models: Vec<FileModel> =
            srcs.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let syms = Symbols::build(&models);
        let mut out = Vec::new();
        check(&models, &syms, &mut out);
        out
    }

    #[test]
    fn two_cycle_is_one_finding() {
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "fn ab(a: &R, b: &R) { let _x = a.latch.write(); let _y = b.latch.write(); }\n\
             fn ba(a: &R, b: &R) { let _x = b.latch.write(); let _y = a.latch.write(); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "lock-order-cycle");
        assert_eq!(f[0].line, 2, "anchored at the last witness");
        assert!(f[0].msg.contains("cycle"), "{}", f[0].msg);
    }

    #[test]
    fn three_cycle_across_files_is_found() {
        let f = run(&[
            (
                "crates/mvcc/src/a.rs",
                "fn ab(a: &R, b: &R) { let _x = a.latch.write(); let _y = b.latch.write(); }\n\
                 fn bc(b: &R, c: &R) { let _x = b.latch.write(); let _y = c.latch.write(); }\n",
            ),
            (
                "crates/sched/src/b.rs",
                "fn ca(c: &R, a: &R) { let _x = c.latch.write(); let _y = a.latch.write(); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].file.ends_with("b.rs"));
        assert!(f[0].msg.contains("a.latch") && f[0].msg.contains("c.latch"));
    }

    #[test]
    fn consistent_global_order_is_clean() {
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "fn ab(a: &R, b: &R) { let _x = a.latch.write(); let _y = b.latch.write(); }\n\
             fn ab2(a: &R, b: &R) { let _x = a.latch.read(); let _y = b.latch.read(); }\n",
        )]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn callee_acquisition_builds_an_edge() {
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "fn outer(a: &R, b: &R) { let _x = a.latch.write(); lock_b(b); }\n\
             fn lock_b(b: &R) { let _y = b.latch.write(); }\n\
             fn rev(a: &R, b: &R) { let _x = b.latch.write(); let _y = a.latch.write(); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].msg.contains("cycle"));
    }

    #[test]
    fn self_keys_qualified_by_impl_type_do_not_collide() {
        // Two types each acquire their own `self.latch` then the peer's:
        // the keys must stay distinct nodes (here: consistent order, no
        // cycle).
        let f = run(&[(
            "crates/mvcc/src/a.rs",
            "struct Rec;\nimpl Rec { fn m(&self, o: &Idx) { let _x = self.latch.write(); let _y = o.latch.write(); } }\n\
             struct Idx;\nimpl Idx { fn m(&self, o: &Rec) { let _x = o.latch.write(); let _y = self.latch.write(); } }\n",
        )]);
        // Rec.latch → o.latch (twice, same direction): no cycle.
        assert!(f.is_empty(), "{f:#?}");
    }
}
