//! Rule orchestration and the per-file rules.
//!
//! Rule ids (used in findings and in suppression comments — see
//! DESIGN.md §12 for the `allow` syntax; spelling it out here would make
//! this very file's doc comment parse as a suppression):
//!
//! * `preempt-in-critical`  — a preemption point reached (directly or
//!   through the call graph) while a latch guard, nonpreempt region,
//!   registry provisional window, or CLS borrow is live (regions.rs).
//! * `lock-order-cycle`     — a cycle in the global latch
//!   acquisition-order graph (lockorder.rs).
//! * `protocol-ordering`    — an atomic op on a protocol field using an
//!   ordering outside the spec table's allow set, or with no spec row at
//!   all (protocol.rs).
//! * `protocol-model-drift` — a protocol's loom model is missing or no
//!   longer mentions its protocol identifiers (protocol.rs).
//! * `missing-safety-comment` — an `unsafe` block/fn/impl without a
//!   `// SAFETY:` (or `/// # Safety`) comment.
//! * `handler-alloc`        — allocation in code reachable from the
//!   user-interrupt handler.
//! * `handler-panic`        — a panicking macro/method reachable from the
//!   handler (`debug_assert!` is exempt: compiled out in release).
//! * `handler-block`        — a blocking call reachable from the handler.
//! * `allow-missing-reason` — a suppression comment without a reason.

use std::collections::HashSet;

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::resolve::{CallGraph, FnId, Symbols};
use crate::{lockorder, protocol, regions};

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Functions the handler reachability walk starts from. `on_point` and
/// `wedge` are the supervisor-facing worker entry points: the terminate
/// token raise and the wedge fault both execute at preemption points,
/// possibly under a handler-driven drain, so they obey the same
/// alloc/panic/block discipline as the delivery path.
pub const HANDLER_ROOTS: &[&str] = &["on_uintr", "deliver_pending", "on_point", "wedge"];

/// Preemption-point calls denied inside critical sections.
pub const PREEMPT_POINTS: &[&str] = &["preempt_point", "poll", "yield_now"];

/// Metric-emit entry points known to be handler-safe by construction
/// (one relaxed load when disabled, relaxed `fetch_add`s when enabled —
/// see `crates/metrics`): the reachability walk does not expand into
/// them, so a counter bump inside a handler path is not a finding.
const HANDLER_SAFE_CALLS: &[&str] = &[
    "counter_add",
    "counter_inc",
    "gauge_set",
    "hist_record",
    "bump",
    "bump_by",
    "observe",
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "with_capacity"];
const ALLOC_ASSOC: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("VecDeque", "new"),
    ("HashMap", "new"),
];
const PANIC_MACROS: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const BLOCK_CALLS: &[&str] = &["sleep", "park", "park_timeout", "recv", "join", "wait", "lock"];

/// Run every rule over a set of file models and return the findings that
/// survive `allow` suppressions (plus findings for reason-less allows).
/// `loom` is the loom test suite's model when available (workspace runs);
/// without it the protocol/model drift check is skipped.
pub fn run_all(models: &[FileModel], loom: Option<&FileModel>) -> Vec<Finding> {
    let syms = Symbols::build(models);
    let graph = CallGraph::build(models, &syms);

    let mut out = Vec::new();
    for m in models {
        check_safety_comments(m, &mut out);
    }
    regions::check(models, &syms, &graph, &mut out);
    lockorder::check(models, &syms, &mut out);
    protocol::check_orderings(models, &mut out);
    if let Some(loom) = loom {
        protocol::check_models(loom, &mut out);
    }
    check_handler_reachability(models, &syms, &graph, &mut out);
    apply_allows(models, &mut out);
    out.sort();
    out.dedup();
    out
}

fn check_safety_comments(m: &FileModel, out: &mut Vec<Finding>) {
    for (i, t) in m.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || m.skipped(i) {
            continue;
        }
        // `#[unsafe(naked)]`-style attribute: `unsafe` followed by `(`.
        if m.toks.get(i + 1).is_some_and(|n| n.is("(")) {
            continue;
        }
        let stmt_line = m.stmt_start_line(i);
        if m.has_safety_comment(t.line) || m.has_safety_comment(stmt_line) {
            continue;
        }
        let what = m
            .toks
            .get(i + 1)
            .map(|n| n.text.as_str())
            .unwrap_or("block");
        let what = match what {
            "fn" => "unsafe fn",
            "impl" => "unsafe impl",
            "trait" => "unsafe trait",
            _ => "unsafe block",
        };
        out.push(Finding {
            file: m.path.clone(),
            line: t.line,
            rule: "missing-safety-comment",
            msg: format!("{what} without a `// SAFETY:` comment documenting its contract"),
        });
    }
}

/// BFS over the resolved call graph from the handler roots; scan each
/// reachable body for allocation, panics, and blocking calls. Expansion
/// stops at `HANDLER_SAFE_CALLS` names (their bodies are safe by
/// construction and deliberately not re-scanned).
fn check_handler_reachability(
    models: &[FileModel],
    syms: &Symbols,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    const MAX_DEPTH: usize = 16;
    const MAX_VISITED: usize = 800;

    let mut queue: std::collections::VecDeque<(FnId, String, usize)> =
        std::collections::VecDeque::new();
    let mut seen: HashSet<FnId> = HashSet::new();
    for root in HANDLER_ROOTS {
        for &id in syms.defs_named(root) {
            if seen.insert(id) {
                queue.push_back((id, root.to_string(), 0));
            }
        }
    }

    while let Some((id, root, depth)) = queue.pop_front() {
        let f = &syms.fns[id];
        let m = &models[f.model];
        scan_handler_body(m, f.body, &f.name, &root, out);
        if depth >= MAX_DEPTH || seen.len() >= MAX_VISITED {
            continue;
        }
        for (site, targets) in &graph.edges[id] {
            if HANDLER_SAFE_CALLS.contains(&site.name.as_str()) {
                continue;
            }
            for &t in targets {
                if seen.insert(t) {
                    queue.push_back((t, root.clone(), depth + 1));
                }
            }
        }
    }
}

fn scan_handler_body(
    m: &FileModel,
    (open, close): (usize, usize),
    fname: &str,
    root: &str,
    out: &mut Vec<Finding>,
) {
    let ctx = |verb: &str, what: &str| {
        format!("{what} {verb} in `{fname}`, reachable from interrupt handler `{root}`")
    };
    let mut i = open;
    while i < close {
        if m.skipped(i) {
            i += 1;
            continue;
        }
        let t = &m.toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next = m.toks.get(i + 1);
        let prev_dot = i > 0 && m.toks[i - 1].is(".");
        let name = t.text.as_str();

        // Macros: `name !`.
        if next.is_some_and(|n| n.is("!")) {
            if PANIC_MACROS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-panic",
                    msg: ctx("used", &format!("panicking macro `{name}!`")),
                });
            } else if ALLOC_MACROS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("used", &format!("allocating macro `{name}!`")),
                });
            }
        }

        // Method / function calls: `name (`.
        if next.is_some_and(|n| n.is("(")) {
            if prev_dot && PANIC_METHODS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-panic",
                    msg: ctx("called", &format!("panicking method `.{name}()`")),
                });
            }
            if prev_dot && ALLOC_METHODS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("called", &format!("allocating method `.{name}()`")),
                });
            }
            if BLOCK_CALLS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-block",
                    msg: ctx("called", &format!("blocking call `{name}()`")),
                });
            }
        }

        // Associated constructors: `Type :: new (`.
        if i + 4 < m.toks.len()
            && m.toks[i + 1].is(":")
            && m.toks[i + 2].is(":")
            && m.toks[i + 4].is("(")
        {
            let assoc = m.toks[i + 3].text.as_str();
            if ALLOC_ASSOC.iter().any(|&(ty, f)| ty == name && f == assoc) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("called", &format!("allocating constructor `{name}::{assoc}()`")),
                });
            }
        }
        i += 1;
    }
}

/// Drop findings covered by a matching `allow`, then flag reason-less
/// allows (suppression still applies — the finding is the missing
/// justification, not the suppressed rule).
fn apply_allows(models: &[FileModel], out: &mut Vec<Finding>) {
    for m in models {
        for a in &m.allows {
            out.retain(|f| {
                !(f.file == m.path && f.rule == a.rule && a.covers.contains(&f.line))
            });
            if !a.has_reason {
                out.push(Finding {
                    file: m.path.clone(),
                    line: a.line,
                    rule: "allow-missing-reason",
                    msg: format!(
                        "suppression `allow({})` has no reason; write \
                         `// preempt-lint: allow({}) — <why this is sound>`",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }
}
