//! The lint rules.
//!
//! Rule ids (used in findings and in suppression comments — see
//! DESIGN.md §7 for the `allow` syntax; spelling it out here would make
//! this very file's doc comment parse as a suppression):
//!
//! * `preempt-in-critical`  — a preemption point (`preempt_point`, `poll`,
//!   `yield_now`) called while a latch guard or nonpreempt region is live.
//! * `missing-safety-comment` — an `unsafe` block/fn/impl without a
//!   `// SAFETY:` (or `/// # Safety`) comment.
//! * `atomic-ordering`      — an atomic op on a protocol-critical field
//!   using an `Ordering` the policy table forbids.
//! * `handler-alloc`        — allocation in code reachable from the
//!   user-interrupt handler.
//! * `handler-panic`        — a panicking macro/method reachable from the
//!   handler (`debug_assert!` is exempt: compiled out in release).
//! * `handler-block`        — a blocking call reachable from the handler.
//! * `latch-order`          — two latches acquired in opposite orders at
//!   two different sites.
//! * `allow-missing-reason` — a suppression comment without a reason.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lexer::TokKind;
use crate::model::{FileModel, GuardKind};

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Per-field atomic-ordering policy. An entry denies specific orderings
/// for one `(file-name, field, op)` triple; fields not listed are
/// unconstrained (plain counters may stay `Relaxed`).
struct OrderingPolicy {
    file: &'static str,
    field: &'static str,
    op: &'static str,
    deny: &'static [&'static str],
    why: &'static str,
}

/// The policy table mirrors the protocols documented in DESIGN.md §7:
/// the UPID pending/active handoff and the PR-1 epoch/ack watchdog.
/// `pending.load` is deliberately absent: the fast-path emptiness probe
/// is allowed to be `Relaxed` because the authoritative read is the
/// subsequent `swap(_, Acquire)`.
const ORDERING_POLICIES: &[OrderingPolicy] = &[
    OrderingPolicy {
        file: "upid.rs",
        field: "pending",
        op: "fetch_or",
        deny: &["Relaxed"],
        why: "posting a vector publishes the sender's writes; needs Release",
    },
    OrderingPolicy {
        file: "upid.rs",
        field: "pending",
        op: "swap",
        deny: &["Relaxed"],
        why: "draining pending must observe the sender's writes; needs Acquire",
    },
    OrderingPolicy {
        file: "upid.rs",
        field: "active",
        op: "store",
        deny: &["Relaxed"],
        why: "deactivation must be ordered after teardown writes; needs Release",
    },
    OrderingPolicy {
        file: "upid.rs",
        field: "active",
        op: "load",
        deny: &["Relaxed"],
        why: "the active check gates posting into freed state; needs Acquire",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "uintr_epoch",
        op: "load",
        deny: &["Relaxed"],
        why: "ack must copy an epoch no older than the delivered post; needs Acquire",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "uintr_ack",
        op: "store",
        deny: &["Relaxed"],
        why: "publishing the ack races the watchdog's re-send decision; needs Release",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "stopped",
        op: "store",
        deny: &["Relaxed"],
        why: "stop flag publishes queue teardown; needs Release",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "stopped",
        op: "load",
        deny: &["Relaxed"],
        why: "observing stop must also observe teardown; needs Acquire",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "degraded",
        op: "load",
        deny: &["Relaxed"],
        why: "pairs with the scheduler's Release store when entering degraded mode",
    },
    OrderingPolicy {
        file: "scheduler.rs",
        field: "uintr_epoch",
        op: "fetch_add",
        deny: &["Relaxed"],
        why: "the epoch bump must precede the UPID post; needs Release",
    },
    OrderingPolicy {
        file: "scheduler.rs",
        field: "uintr_epoch",
        op: "load",
        deny: &["Relaxed"],
        why: "watchdog comparison; needs Acquire",
    },
    OrderingPolicy {
        file: "scheduler.rs",
        field: "uintr_ack",
        op: "load",
        deny: &["Relaxed"],
        why: "watchdog comparison; needs Acquire",
    },
    OrderingPolicy {
        file: "scheduler.rs",
        field: "degraded",
        op: "store",
        deny: &["Relaxed"],
        why: "degraded-mode entry publishes the wake fallback; needs Release",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "terminated",
        op: "store",
        deny: &["Relaxed"],
        why: "termination order must be visible at the worker's next preemption point; needs Release",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "terminated",
        op: "load",
        deny: &["Relaxed"],
        why: "terminate-token eligibility check; needs Acquire",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "exited",
        op: "store",
        deny: &["Relaxed"],
        why: "the supervisor orphan-sweeps only after observing exit; needs Release",
    },
    OrderingPolicy {
        file: "worker.rs",
        field: "exited",
        op: "load",
        deny: &["Relaxed"],
        why: "gates the force-release safety argument; needs Acquire",
    },
];

/// Functions the handler reachability walk starts from. `on_point` and
/// `wedge` are the supervisor-facing worker entry points: the terminate
/// token raise and the wedge fault both execute at preemption points,
/// possibly under a handler-driven drain, so they obey the same
/// alloc/panic/block discipline as the delivery path.
const HANDLER_ROOTS: &[&str] = &["on_uintr", "deliver_pending", "on_point", "wedge"];

/// Preemption-point calls denied inside critical sections.
const PREEMPT_POINTS: &[&str] = &["preempt_point", "poll", "yield_now"];

/// Common method names excluded from call-graph expansion: following
/// them by name would union unrelated `impl`s into the handler graph
/// (`.load(` on an atomic must not pull in every workload's `load`).
const CALL_STOPLIST: &[&str] = &[
    "new", "len", "is_empty", "push", "pop", "get", "set", "insert", "remove", "clear",
    "iter", "next", "drop", "clone", "fmt", "default", "from", "into", "as_ref", "as_mut",
    "eq", "hash", "cmp", "with", "take", "replace", "contains", "min", "max", "map",
    "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_or", "fetch_and",
    "compare_exchange", "compare_exchange_weak", "entry", "collect", "read", "write",
    "send", "recv", "flush", "extend", "filter", "count", "sum", "get_or_init",
];

/// Metric-emit entry points known to be handler-safe by construction
/// (one relaxed load when disabled, relaxed `fetch_add`s when enabled —
/// see `crates/metrics`): the reachability walk does not expand into
/// them, so a counter bump inside a handler path is not a finding.
const HANDLER_SAFE_CALLS: &[&str] = &[
    "counter_add",
    "counter_inc",
    "gauge_set",
    "hist_record",
    "bump",
    "bump_by",
    "observe",
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "with_capacity"];
const ALLOC_ASSOC: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("VecDeque", "new"),
    ("HashMap", "new"),
];
const PANIC_MACROS: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const BLOCK_CALLS: &[&str] = &["sleep", "park", "park_timeout", "recv", "join", "wait", "lock"];

/// Run every rule over a set of file models and return the findings that
/// survive `allow` suppressions (plus findings for reason-less allows).
pub fn run_all(models: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in models {
        check_preempt_in_critical(m, &mut out);
        check_safety_comments(m, &mut out);
        check_atomic_orderings(m, &mut out);
    }
    check_handler_reachability(models, &mut out);
    check_latch_order(models, &mut out);
    apply_allows(models, &mut out);
    out.sort();
    out.dedup();
    out
}

fn check_preempt_in_critical(m: &FileModel, out: &mut Vec<Finding>) {
    for g in &m.guards {
        let what = match g.kind {
            GuardKind::Latch => "latch guard",
            GuardKind::NonPreempt => "nonpreempt region",
        };
        let end = g.end.min(m.toks.len());
        for i in g.start..end {
            if m.skipped(i) {
                continue;
            }
            let t = &m.toks[i];
            if t.kind == TokKind::Ident
                && PREEMPT_POINTS.contains(&t.text.as_str())
                && m.toks.get(i + 1).is_some_and(|n| n.is("("))
                && !(i > 0 && m.toks[i - 1].is_ident("fn"))
            {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "preempt-in-critical",
                    msg: format!(
                        "`{}` called inside a {} opened at line {}; a preemption here \
                         could park the latch holder",
                        t.text, what, g.line
                    ),
                });
            }
        }
    }
}

fn check_safety_comments(m: &FileModel, out: &mut Vec<Finding>) {
    for (i, t) in m.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || m.skipped(i) {
            continue;
        }
        // `#[unsafe(naked)]`-style attribute: `unsafe` followed by `(`.
        if m.toks.get(i + 1).is_some_and(|n| n.is("(")) {
            continue;
        }
        let stmt_line = m.stmt_start_line(i);
        if m.has_safety_comment(t.line) || m.has_safety_comment(stmt_line) {
            continue;
        }
        let what = m
            .toks
            .get(i + 1)
            .map(|n| n.text.as_str())
            .unwrap_or("block");
        let what = match what {
            "fn" => "unsafe fn",
            "impl" => "unsafe impl",
            "trait" => "unsafe trait",
            _ => "unsafe block",
        };
        out.push(Finding {
            file: m.path.clone(),
            line: t.line,
            rule: "missing-safety-comment",
            msg: format!("{what} without a `// SAFETY:` comment documenting its contract"),
        });
    }
}

fn check_atomic_orderings(m: &FileModel, out: &mut Vec<Finding>) {
    let applicable: Vec<&OrderingPolicy> = ORDERING_POLICIES
        .iter()
        .filter(|p| m.path.ends_with(p.file))
        .collect();
    if applicable.is_empty() {
        return;
    }
    for i in 0..m.toks.len().saturating_sub(3) {
        if m.skipped(i) {
            continue;
        }
        let [f, dot, op, paren] = [&m.toks[i], &m.toks[i + 1], &m.toks[i + 2], &m.toks[i + 3]];
        if f.kind != TokKind::Ident || !dot.is(".") || op.kind != TokKind::Ident || !paren.is("(") {
            continue;
        }
        for p in &applicable {
            if f.text != p.field || op.text != p.op {
                continue;
            }
            for ord in m.orderings_in_call(i + 3) {
                if p.deny.contains(&ord) {
                    out.push(Finding {
                        file: m.path.clone(),
                        line: f.line,
                        rule: "atomic-ordering",
                        msg: format!(
                            "`{}.{}` uses Ordering::{}, forbidden by policy: {}",
                            p.field, p.op, ord, p.why
                        ),
                    });
                }
            }
        }
    }
}

/// BFS over a name-resolved call graph from the handler roots; scan each
/// reachable body for allocation, panics, and blocking calls.
fn check_handler_reachability(models: &[FileModel], out: &mut Vec<Finding>) {
    // Crate of a model, derived from its `crates/<name>/…` path.
    let crate_of = |path: &str| -> String {
        path.strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string()
    };
    // name -> [(model idx, fn idx)]
    let mut by_name: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.body.is_some() {
                by_name.entry(f.name.as_str()).or_default().push((mi, fi));
            }
        }
    }
    // Same-crate-first resolution: if the caller's crate defines the
    // name, the call resolves there; only otherwise does it fan out to
    // every crate. This keeps e.g. a scheduler-internal helper from
    // unioning with a like-named function in the workloads crate.
    let resolve = |name: &str, caller_crate: &str| -> Vec<(usize, usize)> {
        let Some(defs) = by_name.get(name) else { return Vec::new() };
        let local: Vec<(usize, usize)> = defs
            .iter()
            .copied()
            .filter(|&(mi, _)| crate_of(&models[mi].path) == caller_crate)
            .collect();
        if local.is_empty() { defs.clone() } else { local }
    };

    let mut queue: VecDeque<(usize, usize, String, usize)> = VecDeque::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for root in HANDLER_ROOTS {
        for &(mi, fi) in by_name.get(root).into_iter().flatten() {
            if seen.insert((mi, fi)) {
                queue.push_back((mi, fi, root.to_string(), 0));
            }
        }
    }

    const MAX_DEPTH: usize = 16;
    const MAX_VISITED: usize = 600;
    while let Some((mi, fi, root, depth)) = queue.pop_front() {
        let m = &models[mi];
        let f = &m.fns[fi];
        let Some((open, close)) = f.body else { continue };
        scan_handler_body(m, (open, close), &f.name, &root, out);
        if depth >= MAX_DEPTH || seen.len() >= MAX_VISITED {
            continue;
        }
        let caller_crate = crate_of(&m.path);
        // Expand callees by name.
        let mut i = open;
        while i < close {
            let t = &m.toks[i];
            let next_is_call = m.toks.get(i + 1).is_some_and(|n| n.is("("));
            let expandable = !CALL_STOPLIST.contains(&t.text.as_str())
                && !HANDLER_SAFE_CALLS.contains(&t.text.as_str());
            if t.kind == TokKind::Ident
                && next_is_call
                && !m.skipped(i)
                && !(i > 0 && m.toks[i - 1].is_ident("fn"))
                && expandable
            {
                for (cmi, cfi) in resolve(&t.text, &caller_crate) {
                    if seen.insert((cmi, cfi)) {
                        queue.push_back((cmi, cfi, root.clone(), depth + 1));
                    }
                }
            }
            i += 1;
        }
    }
}

fn scan_handler_body(
    m: &FileModel,
    (open, close): (usize, usize),
    fname: &str,
    root: &str,
    out: &mut Vec<Finding>,
) {
    let ctx = |verb: &str, what: &str| {
        format!("{what} {verb} in `{fname}`, reachable from interrupt handler `{root}`")
    };
    let mut i = open;
    while i < close {
        if m.skipped(i) {
            i += 1;
            continue;
        }
        let t = &m.toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next = m.toks.get(i + 1);
        let prev_dot = i > 0 && m.toks[i - 1].is(".");
        let name = t.text.as_str();

        // Macros: `name !`.
        if next.is_some_and(|n| n.is("!")) {
            if PANIC_MACROS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-panic",
                    msg: ctx("used", &format!("panicking macro `{name}!`")),
                });
            } else if ALLOC_MACROS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("used", &format!("allocating macro `{name}!`")),
                });
            }
        }

        // Method / function calls: `name (`.
        if next.is_some_and(|n| n.is("(")) {
            if prev_dot && PANIC_METHODS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-panic",
                    msg: ctx("called", &format!("panicking method `.{name}()`")),
                });
            }
            if prev_dot && ALLOC_METHODS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("called", &format!("allocating method `.{name}()`")),
                });
            }
            if BLOCK_CALLS.contains(&name) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-block",
                    msg: ctx("called", &format!("blocking call `{name}()`")),
                });
            }
        }

        // Associated constructors: `Type :: new (`.
        if i + 4 < m.toks.len()
            && m.toks[i + 1].is(":")
            && m.toks[i + 2].is(":")
            && m.toks[i + 4].is("(")
        {
            let assoc = m.toks[i + 3].text.as_str();
            if ALLOC_ASSOC.iter().any(|&(ty, f)| ty == name && f == assoc) {
                out.push(Finding {
                    file: m.path.clone(),
                    line: t.line,
                    rule: "handler-alloc",
                    msg: ctx("called", &format!("allocating constructor `{name}::{assoc}()`")),
                });
            }
        }
        i += 1;
    }
}

/// Detect inconsistent latch acquisition order: if site X acquires
/// (A then B, with A still live) and site Y acquires (B then A), flag Y.
fn check_latch_order(models: &[FileModel], out: &mut Vec<Finding>) {
    let mut pairs: HashMap<(String, String), (String, u32)> = HashMap::new();
    for m in models {
        for (gi, g) in m.guards.iter().enumerate() {
            if g.kind != GuardKind::Latch {
                continue;
            }
            for h in &m.guards[gi + 1..] {
                if h.kind != GuardKind::Latch || h.func != g.func || g.func.is_none() {
                    continue;
                }
                // h acquired while g is still live?
                if h.start < g.end && h.start > g.start && g.key != h.key {
                    let fwd = (g.key.clone(), h.key.clone());
                    let rev = (h.key.clone(), g.key.clone());
                    if let Some((file, line)) = pairs.get(&rev) {
                        out.push(Finding {
                            file: m.path.clone(),
                            line: h.line,
                            rule: "latch-order",
                            msg: format!(
                                "latch `{}` acquired after `{}`, but {}:{} acquires them in \
                                 the opposite order; pick one global order (see DESIGN.md §7)",
                                h.key, g.key, file, line
                            ),
                        });
                    } else {
                        pairs.entry(fwd).or_insert((m.path.clone(), g.line));
                    }
                }
            }
        }
    }
}

/// Drop findings covered by a matching `allow`, then flag reason-less
/// allows (suppression still applies — the finding is the missing
/// justification, not the suppressed rule).
fn apply_allows(models: &[FileModel], out: &mut Vec<Finding>) {
    for m in models {
        for a in &m.allows {
            out.retain(|f| {
                !(f.file == m.path && f.rule == a.rule && a.covers.contains(&f.line))
            });
            if !a.has_reason {
                out.push(Finding {
                    file: m.path.clone(),
                    line: a.line,
                    rule: "allow-missing-reason",
                    msg: format!(
                        "suppression `allow({})` has no reason; write \
                         `// preempt-lint: allow({}) — <why this is sound>`",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }
}
