//! Machine-readable findings: JSON emission, severities, and the
//! checked-in baseline for diff-aware CI.
//!
//! The baseline (`lint-baseline.json` at the workspace root) records the
//! findings a tree is *known* to have; CI fails only on findings not in
//! the baseline, so a rule can be landed before the last offender is
//! fixed without going red, and fixing an offender shows up as a
//! "resolved" note prompting a baseline refresh. Entries match on
//! `(file, rule, msg)` — deliberately not line numbers, so unrelated
//! edits shifting a finding down a few lines do not churn the diff.
//!
//! Both the writer and the reader are hand-rolled (the CI image carries
//! no serde); the reader is a small full JSON parser, so hand-edited
//! baselines with reordered keys or extra fields still load.

use crate::rules::Finding;

/// Severity tiers, keyed by rule id. `critical` findings are latent
/// deadlocks or protocol breaks; `error` findings are crash paths;
/// `warning` findings are documentation debt.
pub fn severity(rule: &str) -> &'static str {
    match rule {
        "lock-order-cycle" | "preempt-in-critical" | "protocol-ordering" | "handler-block" => {
            "critical"
        }
        "handler-alloc" | "handler-panic" | "protocol-model-drift" => "error",
        _ => "warning",
    }
}

/// Render findings as the versioned JSON document CI archives.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"msg\": {}}}",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(severity(f.rule)),
            esc(&f.msg)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One baseline entry; `line` is informational only (not part of the
/// match key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub file: String,
    pub rule: String,
    pub msg: String,
}

/// Parse a baseline document. Returns `None` on malformed JSON (callers
/// treat that as a hard error — a corrupt baseline must not silently
/// suppress everything).
pub fn parse_baseline(src: &str) -> Option<Vec<BaselineEntry>> {
    let v = json::parse(src)?;
    let findings = v.get("findings")?;
    let json::Value::Array(items) = findings else { return None };
    let mut out = Vec::new();
    for it in items {
        out.push(BaselineEntry {
            file: it.get("file")?.as_str()?.to_string(),
            rule: it.get("rule")?.as_str()?.to_string(),
            msg: it.get("msg")?.as_str()?.to_string(),
        });
    }
    Some(out)
}

/// Diff findings against a baseline: `(new, resolved)`. A finding is new
/// when no baseline entry matches its `(file, rule, msg)`; an entry is
/// resolved when no finding matches it.
pub fn diff<'f, 'b>(
    findings: &'f [Finding],
    baseline: &'b [BaselineEntry],
) -> (Vec<&'f Finding>, Vec<&'b BaselineEntry>) {
    let matches =
        |f: &Finding, b: &BaselineEntry| f.file == b.file && f.rule == b.rule && f.msg == b.msg;
    let new: Vec<&Finding> =
        findings.iter().filter(|f| !baseline.iter().any(|b| matches(f, b))).collect();
    let resolved: Vec<&BaselineEntry> =
        baseline.iter().filter(|b| !findings.iter().any(|f| matches(f, b))).collect();
    (new, resolved)
}

/// A minimal but complete JSON parser (objects, arrays, strings with
/// escapes, numbers, booleans, null).
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Num(f64),
        Bool(bool),
        Null,
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(src: &str) -> Option<Value> {
        let b: Vec<char> = src.chars().collect();
        let mut i = 0;
        let v = value(&b, &mut i)?;
        skip_ws(&b, &mut i);
        if i == b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(b: &[char], i: &mut usize) {
        while *i < b.len() && b[*i].is_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[char], i: &mut usize) -> Option<Value> {
        skip_ws(b, i);
        match *b.get(*i)? {
            '{' => {
                *i += 1;
                let mut kvs = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&'}') {
                    *i += 1;
                    return Some(Value::Object(kvs));
                }
                loop {
                    skip_ws(b, i);
                    let Value::Str(k) = value(b, i)? else { return None };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&':') {
                        return None;
                    }
                    *i += 1;
                    kvs.push((k, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some('}') => {
                            *i += 1;
                            return Some(Value::Object(kvs));
                        }
                        _ => return None,
                    }
                }
            }
            '[' => {
                *i += 1;
                let mut items = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&']') {
                    *i += 1;
                    return Some(Value::Array(items));
                }
                loop {
                    items.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some(']') => {
                            *i += 1;
                            return Some(Value::Array(items));
                        }
                        _ => return None,
                    }
                }
            }
            '"' => {
                *i += 1;
                let mut s = String::new();
                while *i < b.len() {
                    match b[*i] {
                        '"' => {
                            *i += 1;
                            return Some(Value::Str(s));
                        }
                        '\\' => {
                            *i += 1;
                            match b.get(*i)? {
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                'r' => s.push('\r'),
                                'u' => {
                                    let hex: String =
                                        b.get(*i + 1..*i + 5)?.iter().collect();
                                    let code = u32::from_str_radix(&hex, 16).ok()?;
                                    s.push(char::from_u32(code)?);
                                    *i += 4;
                                }
                                c => s.push(*c),
                            }
                            *i += 1;
                        }
                        c => {
                            s.push(c);
                            *i += 1;
                        }
                    }
                }
                None // unterminated
            }
            't' if starts(b, *i, "true") => {
                *i += 4;
                Some(Value::Bool(true))
            }
            'f' if starts(b, *i, "false") => {
                *i += 5;
                Some(Value::Bool(false))
            }
            'n' if starts(b, *i, "null") => {
                *i += 4;
                Some(Value::Null)
            }
            c if c == '-' || c.is_ascii_digit() => {
                let start = *i;
                *i += 1;
                while *i < b.len()
                    && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | 'e' | 'E' | '+' | '-'))
                {
                    *i += 1;
                }
                let s: String = b[start..*i].iter().collect();
                s.parse().ok().map(Value::Num)
            }
            _ => None,
        }
    }

    fn starts(b: &[char], i: usize, kw: &str) -> bool {
        b.get(i..i + kw.len())
            .is_some_and(|w| w.iter().collect::<String>() == kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, msg: &str) -> Finding {
        Finding { file: file.to_string(), line: 7, rule, msg: msg.to_string() }
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let fs = vec![
            finding("crates/a/src/x.rs", "lock-order-cycle", "cycle over `a`, `b` — \"quoted\"\nnewline"),
            finding("crates/b/src/y.rs", "handler-alloc", "Box::new in `f`"),
        ];
        let doc = to_json(&fs);
        let parsed = parse_baseline(&doc).expect("self-emitted JSON must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].file, "crates/a/src/x.rs");
        assert_eq!(parsed[0].msg, "cycle over `a`, `b` — \"quoted\"\nnewline");
    }

    #[test]
    fn empty_findings_make_an_empty_baseline() {
        let doc = to_json(&[]);
        let parsed = parse_baseline(&doc).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn diff_is_line_insensitive_and_symmetric() {
        let base = parse_baseline(&to_json(&[finding("f.rs", "handler-panic", "unwrap in `g`")]))
            .unwrap();
        let mut now = finding("f.rs", "handler-panic", "unwrap in `g`");
        now.line = 99; // moved: still baselined
        let fs = vec![now, finding("f.rs", "handler-alloc", "vec! in `h`")];
        let (new, resolved) = diff(&fs, &base);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "handler-alloc");
        assert!(resolved.is_empty());

        let (new2, resolved2) = diff(&[], &base);
        assert!(new2.is_empty());
        assert_eq!(resolved2.len(), 1);
    }

    #[test]
    fn malformed_baseline_is_rejected_not_ignored() {
        assert!(parse_baseline("{\"findings\": [{\"file\": }]}").is_none());
        assert!(parse_baseline("not json").is_none());
        assert!(parse_baseline("{\"version\": 1}").is_none());
    }

    #[test]
    fn severities_cover_every_rule() {
        for rule in [
            "preempt-in-critical",
            "lock-order-cycle",
            "protocol-ordering",
            "protocol-model-drift",
            "handler-alloc",
            "handler-panic",
            "handler-block",
            "missing-safety-comment",
            "allow-missing-reason",
        ] {
            assert!(!severity(rule).is_empty());
        }
        assert_eq!(severity("lock-order-cycle"), "critical");
        assert_eq!(severity("missing-safety-comment"), "warning");
    }
}
