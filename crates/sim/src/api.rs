//! API for code running *on* a simulated core.
//!
//! These free functions locate the active simulation through a
//! thread-local (they panic when no simulation is running, except
//! [`try_now_cycles`]). They are what the scheduling runtime uses to pace
//! arrivals, deliver user interrupts with virtual latency, and block idle
//! workers without burning virtual cycles.

use std::rc::Rc;
use std::sync::Arc;

use preempt_uintr::{UintrReceiver, Upid, NUM_VECTORS};

use crate::config::SimConfig;
use crate::simulation::{suspend_current, try_with_sim, with_sim, CoreId};

/// Virtual time in cycles: the running core's clock, or the event floor
/// when called from the simulator loop itself.
pub fn now_cycles() -> u64 {
    with_sim(|s| {
        let st = s.borrow();
        match st.current_core() {
            Some(i) => st.core_vclock(i),
            None => st.floor(),
        }
    })
}

/// Like [`now_cycles`], but `None` when no simulation is active on this
/// thread — lets shared code fall back to the real TSC.
pub fn try_now_cycles() -> Option<u64> {
    try_with_sim(|s| {
        let st = s.borrow();
        match st.current_core() {
            Some(i) => st.core_vclock(i),
            None => st.floor(),
        }
    })
}

/// Whether this thread is inside a running simulation.
pub fn active() -> bool {
    try_with_sim(|_| ()).is_some()
}

/// The active simulation's configuration.
pub fn config() -> SimConfig {
    with_sim(|s| s.borrow().cfg)
}

/// The id of the core executing the caller.
pub fn current_core() -> CoreId {
    with_sim(|s| {
        CoreId(
            s.borrow()
                .current_core()
                // preempt-lint: allow(handler-panic) — usage invariant:
                // calling sim::* off a simulated core is a test-harness
                // bug, not a runtime condition to recover from.
                .expect("not running on a simulated core"),
        )
    })
}

/// Charges `cycles` of work to the running core without a preemption
/// check — for modeling scheduler-thread bookkeeping costs.
pub fn advance(cycles: u64) {
    with_sim(|s| s.borrow_mut().advance_current(cycles));
}

/// Suspends the calling core until virtual time `t` (cycles).
pub fn sleep_until(t: u64) {
    let state = with_sim(Rc::clone);
    {
        let mut st = state.borrow_mut();
        let i = st.current_core().expect("sleep_until outside a core");
        st.set_blocked(i, Some(t));
    }
    suspend_current(&state);
}

/// Suspends the calling core for `dt` cycles of virtual time.
pub fn sleep(dt: u64) {
    let t = now_cycles().saturating_add(dt);
    sleep_until(t);
}

/// Suspends the calling core until another core [`wake`]s it.
pub fn block() {
    let state = with_sim(Rc::clone);
    {
        let mut st = state.borrow_mut();
        let i = st.current_core().expect("block outside a core");
        st.set_blocked(i, None);
    }
    suspend_current(&state);
}

/// Relinquishes the rest of the grant but stays runnable.
pub fn yield_now() {
    let state = with_sim(Rc::clone);
    suspend_current(&state);
}

/// Wakes `target` if it is blocked, at the caller's current virtual time
/// (e.g. after pushing work into its queue).
pub fn wake(target: CoreId) {
    with_sim(|s| {
        let mut st = s.borrow_mut();
        let at = match st.current_core() {
            Some(i) => st.core_vclock(i),
            None => st.floor(),
        };
        st.wake_inline(target.0, at);
    });
}

/// Registers `receiver` to be polled at every preemption point of the
/// calling core — the analog of binding a UINTR receiver to a thread.
pub fn bind_receiver(receiver: Rc<UintrReceiver>) {
    with_sim(|s| {
        let mut st = s.borrow_mut();
        let i = st.current_core().expect("bind_receiver outside a core");
        st.set_receiver(i, receiver);
    });
}

/// Installs a per-core preemption-point callback for the calling core,
/// invoked at every preemption point after time accounting. This is the
/// simulator-mode replacement for a thread-local
/// [`preempt_context::runtime::PreemptHook`]: with many simulated cores
/// multiplexed onto one OS thread, a thread-local hook would fire for
/// the wrong core.
pub fn set_core_hook(hook: Rc<dyn Fn(u64)>) {
    with_sim(|s| {
        let mut st = s.borrow_mut();
        let i = st.current_core().expect("set_core_hook outside a core");
        st.set_core_hook(i, Some(hook));
    });
}

/// Removes the calling core's preemption-point callback.
pub fn clear_core_hook() {
    with_sim(|s| {
        let mut st = s.borrow_mut();
        let i = st.current_core().expect("clear_core_hook outside a core");
        st.set_core_hook(i, None);
    });
}

/// A simulation-aware `senduipi`: posts `vector` into `upid` after the
/// configured virtual delivery latency and wakes the target core.
#[derive(Clone)]
pub struct SimUipiSender {
    upid: Arc<Upid>,
    vector: u8,
    target: CoreId,
}

impl SimUipiSender {
    pub fn new(upid: Arc<Upid>, vector: u8, target: CoreId) -> SimUipiSender {
        SimUipiSender {
            upid,
            vector,
            target,
        }
    }

    /// Sends the user interrupt: deliverable `uintr_delivery_cycles`
    /// after the caller's current virtual time.
    ///
    /// When the simulation runs under a fault plan, the send may be
    /// dropped (never scheduled — the sender cannot tell), delayed by
    /// extra virtual cycles, duplicated, or accompanied by a spurious
    /// vector; all decisions come from the deterministic injector, so
    /// the same seed reproduces the same delivery schedule.
    pub fn send(&self) {
        use preempt_faults::SendFault;
        // Emitted before the simulator state is mutably borrowed: the
        // trace clock reads the same state to stamp the event.
        preempt_trace::emit(preempt_trace::TraceEvent::UipiSent {
            target: self.upid.owner(),
            vector: self.vector,
        });
        // Read the virtual clock before consulting the injector so
        // phase-gated plans (`drop_before_cycles`) see the send time.
        let now = now_cycles();
        let fault = preempt_faults::on_uipi_send_at(now);
        with_sim(|s| {
            let mut st = s.borrow_mut();
            let at = now + st.cfg.uintr_delivery_cycles;
            match fault {
                SendFault::Deliver => {
                    st.schedule_uintr(at, self.upid.clone(), self.vector, self.target);
                }
                SendFault::Drop => {}
                SendFault::Delay(extra) => {
                    st.schedule_uintr(at + extra, self.upid.clone(), self.vector, self.target);
                }
                SendFault::Duplicate => {
                    st.schedule_uintr(at, self.upid.clone(), self.vector, self.target);
                    st.schedule_uintr(at, self.upid.clone(), self.vector, self.target);
                }
                SendFault::Spurious(v) => {
                    st.schedule_uintr(at, self.upid.clone(), self.vector, self.target);
                    st.schedule_uintr(at, self.upid.clone(), v % NUM_VECTORS, self.target);
                }
            }
        });
    }

    pub fn target(&self) -> CoreId {
        self.target
    }
}

/// Schedules a plain wake-up for `target` at absolute virtual time `t`.
pub fn wake_at(t: u64, target: CoreId) {
    with_sim(|s| s.borrow_mut().schedule_wake(t, target));
}

/// Adds a core to the *running* simulation — the respawn path a
/// supervisor uses to replace a worker it declared dead. The new core's
/// clock starts at the caller's current virtual time (a respawned worker
/// cannot run in its supervisor's virtual past) and it becomes runnable
/// immediately. Retired cores keep their [`CoreId`]s; the replacement
/// gets a fresh one.
pub fn spawn_core(
    name: &'static str,
    stack_size: usize,
    entry: impl FnOnce() + Send + 'static,
) -> CoreId {
    with_sim(|s| s.borrow_mut().spawn_core_inline(name, stack_size, entry))
}
