//! The deterministic virtual-time multicore simulator.
//!
//! **What this substitutes** (DESIGN.md §1.3): the paper evaluates on a
//! 32-core Xeon with 16 pinned worker threads plus a scheduling thread.
//! This host has one core, so wall-clock scheduling experiments would
//! measure the host's scheduler, not PreemptDB's. Instead, each simulated
//! core runs *real engine code* on a real [`preempt_context`] stackful
//! context, and a discrete-event loop interleaves the cores in **virtual
//! time**: every engine operation advances the running core's virtual
//! clock by its nominal cost (in cycles) through the preemption-point hook.
//!
//! Causality rule: a core is granted execution only up to the earliest
//! event that could affect it (a timer such as a user-interrupt delivery
//! or a sleeping core's wake-up, or the `max_slice` bound). Interactions
//! initiated by the *running* core (posting an interrupt, waking a peer)
//! schedule events at its current virtual time or later, so no suspended
//! core ever misses an event in its virtual past. Shared-memory engine
//! state is linearized in grant order — an approximation that is benign
//! for the paper's deliberately low-contention workloads (§6.1).
//!
//! User interrupts in the simulator travel through the *same*
//! [`preempt_uintr::Upid`] machinery as on real threads; the simulator
//! adds a configurable delivery latency (default 0.5 µs, the paper's §6.1
//! measurement).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::Arc;

use preempt_context::runtime::{self, PreemptHook};
use preempt_context::switch::switch_to;
use preempt_context::tcb::{self, CtxState, Tcb};
use preempt_context::Context;
use preempt_uintr::{UintrReceiver, Upid};

use crate::config::SimConfig;

/// Identifies a simulated core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoreStatus {
    /// Eligible to run; `vclock` is its current virtual time.
    Runnable,
    /// Waiting: for a timepoint (`until = Some(t)`) or for an explicit
    /// [`wake`](crate::api::wake) (`until = None`).
    Blocked { until: Option<u64> },
    /// Main context finished.
    Done,
}

pub(crate) struct CoreState {
    name: &'static str,
    /// Virtual clock in cycles.
    vclock: u64,
    /// Current grant: suspend at the next preemption point at/after this.
    deadline: u64,
    status: CoreStatus,
    /// The core's main context (owned; keeps sub-context parents alive).
    #[allow(dead_code)]
    context: Context,
    /// The context to resume — the one that was running when the core was
    /// last suspended (cores may switch among several transaction
    /// contexts internally).
    active: *const Tcb,
    /// The main context's TCB: the core is Done when this finishes.
    main_tcb: *const Tcb,
    /// Receiver polled at this core's preemption points, if registered.
    receiver: Option<Rc<UintrReceiver>>,
    /// Per-core preemption-point callback (e.g. a PreemptDB worker's
    /// delivery/yield logic). Invoked after time accounting, before the
    /// deadline check. Per-core — NOT per-thread — because many cores
    /// share one OS thread.
    core_hook: Option<Rc<dyn Fn(u64)>>,
    /// Cycles attributed to this core through preemption points.
    busy_cycles: u64,
    /// Number of preemption points executed.
    preempt_points: u64,
}

/// Per-core statistics reported after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    pub busy_cycles: u64,
    pub preempt_points: u64,
    pub final_vclock: u64,
}

/// A contained core failure: the core's main context panicked, and the
/// simulation recorded the panic and marked the core Done instead of
/// propagating it — the rest of the machine keeps running, exactly as a
/// hardware core wedging does not halt its peers. Supervisors (the
/// scheduling thread) read these to drive worker respawn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreFailure {
    pub core: CoreId,
    pub name: &'static str,
    /// Captured panic message ("unknown panic" for non-string payloads).
    pub message: String,
    /// Virtual time at which the failure was observed by the event loop.
    pub at: u64,
}

enum TimerAction {
    /// Post `vector` into `upid` and wake `target` (user-interrupt
    /// delivery completing).
    PostUintr {
        upid: Arc<Upid>,
        vector: u8,
        target: CoreId,
    },
    /// Wake `target` if it is blocked.
    Wake(CoreId),
}

struct Timer {
    at: u64,
    seq: u64,
    action: TimerAction,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

pub(crate) struct SimState {
    pub(crate) cfg: SimConfig,
    cores: Vec<CoreState>,
    timers: BinaryHeap<Reverse<Timer>>,
    timer_seq: u64,
    /// Index of the core currently granted execution.
    current: Option<usize>,
    /// The simulator loop's context (the thread context that called run).
    root: *const Tcb,
    /// High-water mark of processed event times (the "wall clock" seen
    /// from outside any core).
    floor: u64,
    running: bool,
    /// Contained core panics, in observation order.
    failures: Vec<CoreFailure>,
}

thread_local! {
    static CURRENT_SIM: RefCell<Option<Rc<RefCell<SimState>>>> = const { RefCell::new(None) };
}

pub(crate) fn with_sim<R>(f: impl FnOnce(&Rc<RefCell<SimState>>) -> R) -> R {
    CURRENT_SIM.with(|s| {
        let borrow = s.borrow();
        let rc = borrow
            .as_ref()
            // preempt-lint: allow(handler-panic) — calling sim::* outside
            // a running simulation is a harness wiring bug; the panic
            // fires at test setup, never on a production path.
            .expect("not inside a running Simulation (sim::* called outside run())");
        f(rc)
    })
}

pub(crate) fn try_with_sim<R>(f: impl FnOnce(&Rc<RefCell<SimState>>) -> R) -> Option<R> {
    CURRENT_SIM.with(|s| s.borrow().as_ref().map(f))
}

/// A deterministic virtual-time multicore simulation.
pub struct Simulation {
    state: Rc<RefCell<SimState>>,
    /// Fault-injection results captured at the end of [`run`](Self::run)
    /// when the config carried a [`FaultPlan`](preempt_faults::FaultPlan).
    fault_report: RefCell<Option<(preempt_faults::FaultStats, String)>>,
}

impl Simulation {
    pub fn new(cfg: SimConfig) -> Simulation {
        Simulation {
            state: Rc::new(RefCell::new(SimState {
                cfg,
                cores: Vec::new(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                current: None,
                root: std::ptr::null(),
                floor: 0,
                running: false,
                failures: Vec::new(),
            })),
            fault_report: RefCell::new(None),
        }
    }

    pub fn config(&self) -> SimConfig {
        self.state.borrow().cfg
    }

    /// Adds a simulated core whose program is `entry`. Must be called
    /// before [`run`](Simulation::run).
    pub fn spawn_core(
        &self,
        name: &'static str,
        stack_size: usize,
        entry: impl FnOnce() + Send + 'static,
    ) -> CoreId {
        let mut st = self.state.borrow_mut();
        assert!(!st.running, "cannot spawn cores during run()");
        let context = Context::new(stack_size, name, entry).expect("stack allocation failed");
        let main_tcb = context.tcb_ptr();
        st.cores.push(CoreState {
            name,
            vclock: 0,
            deadline: 0,
            status: CoreStatus::Runnable,
            active: main_tcb,
            main_tcb,
            context,
            receiver: None,
            core_hook: None,
            busy_cycles: 0,
            preempt_points: 0,
        });
        CoreId(st.cores.len() - 1)
    }

    /// Runs the simulation to completion (all cores Done). A core whose
    /// context panics is *contained*: the panic is recorded as a
    /// [`CoreFailure`] (see [`core_failures`](Self::core_failures)), the
    /// core is marked Done, and the remaining cores keep running. Panics
    /// only on deadlock (nothing runnable, no timers, and at least one
    /// core blocked forever).
    pub fn run(&self) {
        {
            let mut st = self.state.borrow_mut();
            assert!(!st.running, "run() is not reentrant");
            st.running = true;
            st.root = tcb::current_ptr();
        }
        CURRENT_SIM.with(|s| {
            let prev = s.borrow_mut().replace(self.state.clone());
            assert!(prev.is_none(), "nested simulations are not supported");
        });
        struct TlReset;
        impl Drop for TlReset {
            fn drop(&mut self) {
                CURRENT_SIM.with(|s| *s.borrow_mut() = None);
            }
        }
        let _tl_reset = TlReset;

        // Trace timestamps come from the virtual clock for the duration
        // of the run, so traces of same-config runs are byte-identical.
        // The closure must never panic: a (theoretically) reentrant read
        // while the state is mutably borrowed degrades to timestamp 0.
        let _clock_guard = {
            let state = self.state.clone();
            preempt_trace::clock::install_thread_clock(Rc::new(move || {
                match state.try_borrow() {
                    Ok(st) => match st.current_core() {
                        Some(i) => st.core_vclock(i),
                        None => st.floor(),
                    },
                    Err(_) => 0,
                }
            }))
        };

        // Install the fault plan (if any) for exactly the duration of the
        // event loop. All cores share this OS thread, so one thread-local
        // injector covers every simulated core deterministically.
        let fault_guard = {
            let cfg = self.state.borrow().cfg;
            cfg.faults.map(preempt_faults::install)
        };

        let hook = SimHook {
            state: self.state.clone(),
        };
        runtime::with_hook(&hook, || self.event_loop());
        if let Some(guard) = fault_guard {
            *self.fault_report.borrow_mut() = Some((guard.stats(), guard.trace()));
        }
        self.state.borrow_mut().running = false;
    }

    fn event_loop(&self) {
        #[derive(Debug)]
        enum Step {
            FireTimer,
            WakeCore(usize, u64),
            RunCore(usize),
            AllDone,
            Deadlock,
        }
        loop {
            let step = {
                let st = self.state.borrow();
                // Candidates ordered by (time, tie-priority): timers fire
                // before wakes, wakes before grants, so a delivery at time
                // T is visible to a core granted at time T.
                let mut best: Option<(u64, u8, Step)> = None;
                let mut consider = |t: u64, prio: u8, step: Step| {
                    if best
                        .as_ref()
                        .map(|(bt, bp, _)| (t, prio) < (*bt, *bp))
                        .unwrap_or(true)
                    {
                        best = Some((t, prio, step));
                    }
                };
                if let Some(Reverse(timer)) = st.timers.peek() {
                    consider(timer.at, 0, Step::FireTimer);
                }
                let mut all_done = true;
                for (i, c) in st.cores.iter().enumerate() {
                    match c.status {
                        CoreStatus::Runnable => {
                            all_done = false;
                            consider(c.vclock, 2, Step::RunCore(i));
                        }
                        CoreStatus::Blocked { until } => {
                            all_done = false;
                            if let Some(t) = until {
                                consider(t, 1, Step::WakeCore(i, t));
                            }
                        }
                        CoreStatus::Done => {}
                    }
                }
                match best {
                    Some((_, _, s)) => s,
                    None if all_done => Step::AllDone,
                    None => Step::Deadlock,
                }
            };

            match step {
                Step::AllDone => return,
                Step::Deadlock => {
                    let st = self.state.borrow();
                    let stuck: Vec<_> = st
                        .cores
                        .iter()
                        .filter(|c| c.status != CoreStatus::Done)
                        .map(|c| c.name)
                        .collect();
                    panic!(
                        "simulation deadlock at vtime {}: cores {:?} blocked forever",
                        st.floor, stuck
                    );
                }
                Step::FireTimer => {
                    let (action, at) = {
                        let mut st = self.state.borrow_mut();
                        let Reverse(t) = st.timers.pop().expect("peeked");
                        st.floor = st.floor.max(t.at);
                        (t.action, t.at)
                    };
                    match action {
                        TimerAction::PostUintr {
                            upid,
                            vector,
                            target,
                        } => {
                            upid.post(vector);
                            self.wake_core(target.0, at);
                        }
                        TimerAction::Wake(target) => self.wake_core(target.0, at),
                    }
                }
                Step::WakeCore(i, t) => {
                    self.wake_core(i, t);
                }
                Step::RunCore(i) => {
                    let active = {
                        let mut st = self.state.borrow_mut();
                        let max_slice = st.cfg.max_slice_cycles;
                        // Grant until the earliest future event.
                        let mut deadline = st.cores[i].vclock.saturating_add(max_slice);
                        if let Some(Reverse(t)) = st.timers.peek() {
                            deadline = deadline.min(t.at);
                        }
                        for (j, c) in st.cores.iter().enumerate() {
                            if j == i {
                                continue;
                            }
                            match c.status {
                                CoreStatus::Blocked { until: Some(t) } => {
                                    deadline = deadline.min(t);
                                }
                                // Never run more than one slice ahead of
                                // the laggiest runnable peer: bounds the
                                // virtual-order skew of shared-state
                                // interactions (see module docs).
                                CoreStatus::Runnable => {
                                    deadline = deadline.min(c.vclock.saturating_add(max_slice));
                                }
                                _ => {}
                            }
                        }
                        let vclock = st.cores[i].vclock;
                        st.floor = st.floor.max(vclock);
                        st.cores[i].deadline = deadline;
                        st.current = Some(i);
                        st.cores[i].active
                    };
                    // SAFETY: `active` is the TCB of a context owned by the
                    // core (its main Context or a sub-context the core's
                    // program keeps alive while suspended).
                    switch_to(unsafe { &*active });
                    // The core suspended (hook/block/sleep) or finished.
                    let mut st = self.state.borrow_mut();
                    st.current = None;
                    let c = &mut st.cores[i];
                    // SAFETY: main_tcb outlives the owning Context in `c`.
                    let main_state = unsafe { (*c.main_tcb).state() };
                    match main_state {
                        CtxState::Finished => c.status = CoreStatus::Done,
                        CtxState::Poisoned => {
                            // Contain the failure: record it, retire the
                            // core, keep the rest of the machine running.
                            // SAFETY: main_tcb outlives the owning
                            // Context in `c` (same contract as above).
                            let msg = unsafe { (*c.main_tcb).panic_message() }
                                .unwrap_or_else(|| "unknown panic".into());
                            c.status = CoreStatus::Done;
                            let failure = CoreFailure {
                                core: CoreId(i),
                                name: c.name,
                                message: msg,
                                at: c.vclock,
                            };
                            st.failures.push(failure);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn wake_core(&self, i: usize, at: u64) {
        let mut st = self.state.borrow_mut();
        st.floor = st.floor.max(at);
        let c = &mut st.cores[i];
        if let CoreStatus::Blocked { .. } = c.status {
            c.status = CoreStatus::Runnable;
            c.vclock = c.vclock.max(at);
        }
    }

    /// Per-core statistics (valid after [`run`](Simulation::run)).
    pub fn core_stats(&self, id: CoreId) -> CoreStats {
        let st = self.state.borrow();
        let c = &st.cores[id.0];
        CoreStats {
            busy_cycles: c.busy_cycles,
            preempt_points: c.preempt_points,
            final_vclock: c.vclock,
        }
    }

    /// Injected-fault counters from the last [`run`](Self::run), if the
    /// config carried a fault plan.
    pub fn fault_stats(&self) -> Option<preempt_faults::FaultStats> {
        self.fault_report.borrow().as_ref().map(|(s, _)| s.clone())
    }

    /// The deterministic fault trace from the last [`run`](Self::run):
    /// one line per injected fault, byte-identical across same-seed
    /// reruns of the same configuration.
    pub fn fault_trace(&self) -> Option<String> {
        self.fault_report.borrow().as_ref().map(|(_, t)| t.clone())
    }

    /// Contained core panics from the last [`run`](Self::run), in
    /// observation order (empty when every core finished cleanly).
    pub fn core_failures(&self) -> Vec<CoreFailure> {
        self.state.borrow().failures.clone()
    }

    /// Final virtual time (cycles) when the simulation ended.
    pub fn final_vtime(&self) -> u64 {
        let st = self.state.borrow();
        st.cores
            .iter()
            .map(|c| c.vclock)
            .max()
            .unwrap_or(st.floor)
            .max(st.floor)
    }
}

/// The preemption-point hook: advances virtual time, polls the core's
/// user-interrupt receiver, and enforces grant deadlines.
struct SimHook {
    state: Rc<RefCell<SimState>>,
}

impl PreemptHook for SimHook {
    fn preempt_point(&self, cost_cycles: u64) {
        let (receiver, core_hook) = {
            let mut st = self.state.borrow_mut();
            let Some(i) = st.current else {
                // Preemption point executed by the simulator loop itself
                // (e.g. a drop handler on the root context): no core to
                // charge.
                return;
            };
            let c = &mut st.cores[i];
            c.vclock += cost_cycles;
            c.busy_cycles += cost_cycles;
            c.preempt_points += 1;
            (c.receiver.clone(), c.core_hook.clone())
        };
        // Poll / run the core hook *before* the deadline check so a
        // delivery that has already been posted is handled at this point
        // (the handler may switch contexts within the core; we return
        // here when it resumes us).
        if let Some(r) = receiver {
            r.poll();
        }
        if let Some(h) = core_hook {
            h(cost_cycles);
        }
        // Re-read state: the hook may have run for a long time on another
        // context of this core before resuming us.
        let expired = {
            let st = self.state.borrow();
            match st.current {
                Some(i) => st.cores[i].vclock >= st.cores[i].deadline,
                None => false,
            }
        };
        if expired {
            suspend_current(&self.state);
        }
    }
}

/// Suspends the currently granted core back to the simulator loop.
pub(crate) fn suspend_current(state: &Rc<RefCell<SimState>>) {
    let root = {
        let mut st = state.borrow_mut();
        // preempt-lint: allow(handler-panic) — simulator invariant: the
        // event loop sets `current` before every grant, so a miss here
        // is a simulator bug, never a workload condition.
        let i = st.current.expect("suspend outside a granted core");
        st.cores[i].active = tcb::current_ptr();
        st.root
    };
    // SAFETY: root is the simulator's context, alive for the whole run.
    switch_to(unsafe { &*root });
}

// ---- crate-internal accessors used by the `api` module ----

impl SimState {
    pub(crate) fn current_core(&self) -> Option<usize> {
        self.current
    }

    pub(crate) fn core_vclock(&self, i: usize) -> u64 {
        self.cores[i].vclock
    }

    pub(crate) fn floor(&self) -> u64 {
        self.floor
    }

    pub(crate) fn set_blocked(&mut self, i: usize, until: Option<u64>) {
        self.cores[i].status = CoreStatus::Blocked { until };
        self.cores[i].active = tcb::current_ptr();
    }

    pub(crate) fn wake_inline(&mut self, i: usize, at: u64) {
        self.floor = self.floor.max(at);
        let c = &mut self.cores[i];
        if let CoreStatus::Blocked { .. } = c.status {
            c.status = CoreStatus::Runnable;
            c.vclock = c.vclock.max(at);
        }
    }

    fn add_timer(&mut self, at: u64, action: TimerAction) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse(Timer { at, seq, action }));
    }

    pub(crate) fn schedule_uintr(&mut self, at: u64, upid: Arc<Upid>, vector: u8, target: CoreId) {
        self.add_timer(
            at,
            TimerAction::PostUintr {
                upid,
                vector,
                target,
            },
        );
    }

    pub(crate) fn schedule_wake(&mut self, at: u64, target: CoreId) {
        self.add_timer(at, TimerAction::Wake(target));
    }

    pub(crate) fn set_receiver(&mut self, i: usize, r: Rc<UintrReceiver>) {
        self.cores[i].receiver = Some(r);
    }

    pub(crate) fn set_core_hook(&mut self, i: usize, h: Option<Rc<dyn Fn(u64)>>) {
        self.cores[i].core_hook = h;
    }

    pub(crate) fn advance_current(&mut self, cycles: u64) {
        if let Some(i) = self.current {
            self.cores[i].vclock += cycles;
            self.cores[i].busy_cycles += cycles;
        }
    }

    /// Adds a core while the simulation is running (worker respawn). The
    /// new core's clock starts at the spawner's current virtual time (or
    /// the event floor when called from the simulator loop), so it can
    /// never run in the spawner's virtual past.
    pub(crate) fn spawn_core_inline(
        &mut self,
        name: &'static str,
        stack_size: usize,
        entry: impl FnOnce() + Send + 'static,
    ) -> CoreId {
        let start = match self.current {
            Some(i) => self.cores[i].vclock,
            None => self.floor,
        };
        let context = Context::new(stack_size, name, entry).expect("stack allocation failed");
        let main_tcb = context.tcb_ptr();
        self.cores.push(CoreState {
            name,
            vclock: start,
            deadline: start,
            status: CoreStatus::Runnable,
            active: main_tcb,
            main_tcb,
            context,
            receiver: None,
            core_hook: None,
            busy_cycles: 0,
            preempt_points: 0,
        });
        CoreId(self.cores.len() - 1)
    }
}
