//! Simulation configuration and the calibrated cost model's time base.

/// Configuration of the virtual-time multicore substrate.
///
/// Virtual time is measured in **cycles** of a nominal clock, mirroring the
/// paper's 2.4 GHz Xeon (§6.1); engine operations report their costs in the
/// same unit, so a TPC-H Q2 that consumes ~10 M cycles lasts ~4.2 ms of
/// virtual time regardless of the host.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Nominal core frequency (cycles per second). Default 2.4 GHz.
    pub freq_hz: u64,
    /// Virtual user-interrupt delivery latency, post→deliverable, in
    /// cycles. Default ≈ 0.5 µs, the sub-µs figure the paper measures for
    /// UINTR between two threads (§6.1).
    pub uintr_delivery_cycles: u64,
    /// Upper bound on one uninterrupted grant to a core, in cycles. Bounds
    /// how far one core's virtual clock may run ahead of the others
    /// between interactions. Default ≈ 100 µs.
    pub max_slice_cycles: u64,
    /// Optional fault plan, installed for the duration of
    /// [`Simulation::run`](crate::Simulation::run): interrupt sends,
    /// dispatches, preemption points, and commits consult it through the
    /// `preempt_faults` thread-local hooks. `None` (the default) injects
    /// nothing.
    pub faults: Option<preempt_faults::FaultPlan>,
}

impl SimConfig {
    /// Converts nanoseconds to cycles at the configured frequency.
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as u128 * self.freq_hz as u128 / 1_000_000_000) as u64
    }

    /// Converts microseconds to cycles at the configured frequency.
    pub fn us_to_cycles(&self, us: u64) -> u64 {
        self.ns_to_cycles(us * 1_000)
    }

    /// Converts milliseconds to cycles at the configured frequency.
    pub fn ms_to_cycles(&self, ms: u64) -> u64 {
        self.ns_to_cycles(ms * 1_000_000)
    }

    /// Converts cycles back to nanoseconds. A zero frequency (a
    /// zero-initialized config) converts to 0 rather than dividing by it.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        if self.freq_hz == 0 {
            return 0;
        }
        (cycles as u128 * 1_000_000_000 / self.freq_hz as u128) as u64
    }

    /// Converts cycles to (fractional) microseconds (0.0 at zero freq).
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        if self.freq_hz == 0 {
            return 0.0;
        }
        cycles as f64 * 1e6 / self.freq_hz as f64
    }

    /// Converts cycles to (fractional) milliseconds (0.0 at zero freq).
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        if self.freq_hz == 0 {
            return 0.0;
        }
        cycles as f64 * 1e3 / self.freq_hz as f64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        let freq_hz = 2_400_000_000;
        SimConfig {
            freq_hz,
            uintr_delivery_cycles: freq_hz / 2_000_000, // 0.5 µs
            max_slice_cycles: freq_hz / 10_000,         // 100 µs
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_like() {
        let c = SimConfig::default();
        assert_eq!(c.freq_hz, 2_400_000_000);
        assert_eq!(c.uintr_delivery_cycles, 1200); // 0.5 µs at 2.4 GHz
    }

    #[test]
    fn conversions() {
        let c = SimConfig::default();
        assert_eq!(c.ms_to_cycles(1), 2_400_000);
        assert_eq!(c.us_to_cycles(1), 2_400);
        assert_eq!(c.cycles_to_ns(2_400), 1_000);
        assert!((c.cycles_to_us(2_400) - 1.0).abs() < 1e-9);
        assert!((c.cycles_to_ms(2_400_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_freq_converts_to_zero() {
        let c = SimConfig {
            freq_hz: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.cycles_to_ns(2_400), 0);
        assert_eq!(c.cycles_to_us(2_400), 0.0);
        assert_eq!(c.cycles_to_ms(2_400), 0.0);
    }
}
