//! # preempt-sim
//!
//! Deterministic virtual-time multicore simulator: the substitute for the
//! paper's 32-core UINTR-enabled Xeon testbed (DESIGN.md §1.3).
//!
//! Simulated cores run **real engine code** on real stackful contexts;
//! only *time* is virtual. The scheduling experiments of §6 are therefore
//! executed with the actual PreemptDB mechanisms (user-interrupt posting,
//! handler-driven context switches, CLS swaps, non-preemptible deferral) —
//! the simulator merely decides when each core runs and what its clock
//! reads, making 16-core 30-second experiments reproducible on a 1-core
//! host in deterministic fashion.
//!
//! ```
//! use preempt_sim::{SimConfig, Simulation};
//!
//! let sim = Simulation::new(SimConfig::default());
//! sim.spawn_core("worker", 64 * 1024, || {
//!     // Engine code calls preempt_point(cost) at every operation; here
//!     // we model 3 operations of 1000 cycles each.
//!     for _ in 0..3 {
//!         preempt_context::runtime::preempt_point(1000);
//!     }
//!     assert_eq!(preempt_sim::api::now_cycles(), 3000);
//! });
//! sim.run();
//! assert_eq!(sim.final_vtime(), 3000);
//! ```

pub mod api;
pub mod config;
pub mod simulation;

pub use api::SimUipiSender;
pub use config::SimConfig;
pub use simulation::{CoreFailure, CoreId, CoreStats, Simulation};

#[cfg(test)]
mod tests {
    use super::*;
    use preempt_context::runtime::preempt_point;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Tiny Send+Sync event log for single-threaded sim tests.
    mod parking {
        use std::sync::Mutex;
        #[derive(Default)]
        pub struct Order(Mutex<Vec<(&'static str, u64)>>);
        impl Order {
            pub fn push(&self, v: (&'static str, u64)) {
                self.0.lock().unwrap().push(v);
            }
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                self.0.lock().unwrap().clone()
            }
        }
    }

    #[test]
    fn single_core_advances_virtual_time() {
        let sim = Simulation::new(SimConfig::default());
        sim.spawn_core("c0", 64 * 1024, || {
            for _ in 0..10 {
                preempt_point(500);
            }
        });
        sim.run();
        assert_eq!(sim.final_vtime(), 5000);
        let stats = sim.core_stats(CoreId(0));
        assert_eq!(stats.busy_cycles, 5000);
        assert_eq!(stats.preempt_points, 10);
    }

    #[test]
    fn cores_interleave_by_virtual_time() {
        // A slow core (big ops) and a fast core (small ops): completion
        // times in virtual time must reflect cost, not spawn order.
        let order: Arc<parking::Order> = Arc::default();
        // A small slice forces fine-grained interleaving so completion
        // order tracks virtual time exactly.
        let sim = Simulation::new(SimConfig {
            max_slice_cycles: 50,
            ..SimConfig::default()
        });
        let (o1, o2) = (order.clone(), order.clone());
        sim.spawn_core("slow", 64 * 1024, move || {
            preempt_point(10_000);
            o1.push(("slow", api::now_cycles()));
        });
        sim.spawn_core("fast", 64 * 1024, move || {
            preempt_point(100);
            o2.push(("fast", api::now_cycles()));
        });
        sim.run();
        let v = order.snapshot();
        assert_eq!(v[0], ("fast", 100));
        assert_eq!(v[1], ("slow", 10_000));
    }

    #[test]
    fn sleep_until_wakes_at_the_right_time() {
        let observed = Arc::new(AtomicU64::new(0));
        let o = observed.clone();
        let sim = Simulation::new(SimConfig::default());
        sim.spawn_core("sleeper", 64 * 1024, move || {
            api::sleep_until(123_456);
            o.store(api::now_cycles(), Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(observed.load(Ordering::Relaxed), 123_456);
    }

    #[test]
    fn block_and_wake_across_cores() {
        let woke_at = Arc::new(AtomicU64::new(0));
        let w = woke_at.clone();
        let sim = Simulation::new(SimConfig::default());
        let blocked = sim.spawn_core("blocked", 64 * 1024, move || {
            api::block();
            w.store(api::now_cycles(), Ordering::Relaxed);
        });
        sim.spawn_core("waker", 64 * 1024, move || {
            preempt_point(7_000); // do some work first
            api::wake(blocked);
        });
        sim.run();
        assert_eq!(
            woke_at.load(Ordering::Relaxed),
            7_000,
            "blocked core inherits the waker's virtual time"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn forever_blocked_core_is_a_deadlock() {
        let sim = Simulation::new(SimConfig::default());
        sim.spawn_core("stuck", 64 * 1024, api::block);
        sim.run();
    }

    #[test]
    fn core_panic_is_contained() {
        // A panicking core is recorded and retired; its peers finish.
        let survivor_done = Arc::new(AtomicU64::new(0));
        let s = survivor_done.clone();
        let sim = Simulation::new(SimConfig::default());
        let bad = sim.spawn_core("bad", 64 * 1024, || {
            preempt_point(500);
            panic!("boom");
        });
        sim.spawn_core("survivor", 64 * 1024, move || {
            preempt_point(10_000);
            s.store(api::now_cycles(), Ordering::Relaxed);
        });
        sim.run();
        assert_eq!(
            survivor_done.load(Ordering::Relaxed),
            10_000,
            "peer cores keep running after a contained panic"
        );
        let failures = sim.core_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].core, bad);
        assert_eq!(failures[0].name, "bad");
        assert_eq!(failures[0].message, "boom");
        assert_eq!(failures[0].at, 500);
    }

    #[test]
    fn spawn_core_mid_run_starts_at_spawner_time() {
        // A supervisor core replaces a failed worker mid-run; the
        // replacement starts at the supervisor's virtual time and runs
        // to completion.
        let replacement_ran = Arc::new(AtomicU64::new(0));
        let r = replacement_ran.clone();
        let sim = Simulation::new(SimConfig::default());
        sim.spawn_core("worker", 64 * 1024, || panic!("wedged"));
        sim.spawn_core("supervisor", 64 * 1024, move || {
            preempt_point(5_000);
            let r2 = r.clone();
            api::spawn_core("worker'", 64 * 1024, move || {
                preempt_point(100);
                r2.store(api::now_cycles(), Ordering::Relaxed);
            });
        });
        sim.run();
        assert_eq!(
            replacement_ran.load(Ordering::Relaxed),
            5_100,
            "replacement inherits the supervisor's clock, then works"
        );
        assert_eq!(sim.core_failures().len(), 1, "original failure recorded");
    }

    thread_local! {
        static UPID_CHAN: RefCell<Option<Arc<preempt_uintr::Upid>>> =
            const { RefCell::new(None) };
    }

    #[test]
    fn uintr_delivery_has_configured_latency() {
        // Receiver core spins at preemption points; sender posts at a
        // known virtual time; the handler records delivery time.
        let cfg = SimConfig::default();
        let lat = cfg.uintr_delivery_cycles;
        let delivered_at = Arc::new(AtomicU64::new(0));
        let sim = Simulation::new(cfg);

        let d = delivered_at.clone();
        let rx_core = sim.spawn_core("rx", 64 * 1024, move || {
            let mut rx = preempt_uintr::UintrReceiver::new();
            let d2 = d.clone();
            rx.register_handler(move |_| {
                d2.store(api::now_cycles(), Ordering::Relaxed);
            });
            let rx = Rc::new(rx);
            api::bind_receiver(rx.clone());
            // Expose the UPID to the sender core through a side channel
            // (both cores run on the same OS thread).
            UPID_CHAN.with(|c| *c.borrow_mut() = Some(rx.upid()));
            // Let the sender core reach its sleep first so its timed
            // wake-up bounds our grants (as the scheduler's arrival pacing
            // does in the real experiments; see module docs on causality).
            api::sleep_until(1);
            // Spin in small ops until delivery happens.
            while d.load(Ordering::Relaxed) == 0 {
                preempt_point(100);
            }
        });

        sim.spawn_core("tx", 64 * 1024, move || {
            // The receiver registered its UPID at vtime 0. Sleep (a timed
            // event, like the paper's scheduler pacing arrivals) so the
            // receiver's grants are bounded by our wake-up, then send.
            api::sleep_until(10_000);
            let upid = UPID_CHAN.with(|c| c.borrow().clone()).expect("upid ready");
            SimUipiSender::new(upid, 0, rx_core).send();
        });

        sim.run();
        let t = delivered_at.load(Ordering::Relaxed);
        assert!(t >= 10_000 + lat, "delivered no earlier than send+latency");
        assert!(
            t <= 10_000 + lat + 200,
            "delivered promptly after latency: t={t}, expected <= {}",
            10_000 + lat + 200
        );
    }

    #[test]
    fn max_slice_bounds_run_ahead() {
        // With two free-running cores and no timers, neither core's clock
        // should ever be more than ~max_slice ahead when the other runs.
        let cfg = SimConfig {
            max_slice_cycles: 1_000,
            ..SimConfig::default()
        };
        let max_skew = Arc::new(AtomicU64::new(0));
        let sim = Simulation::new(cfg);
        let other_clock = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let skew = max_skew.clone();
            let other = other_clock.clone();
            sim.spawn_core("racer", 64 * 1024, move || {
                for _ in 0..100 {
                    preempt_point(100);
                    let mine = api::now_cycles();
                    let theirs = other.swap(mine, Ordering::Relaxed);
                    let d = mine.saturating_sub(theirs);
                    skew.fetch_max(d, Ordering::Relaxed);
                }
            });
        }
        sim.run();
        // Each core runs 10 ops (1000 cycles) per grant; skew bounded by
        // one slice plus one op.
        assert!(max_skew.load(Ordering::Relaxed) <= 1_100);
    }

    #[test]
    fn try_now_outside_sim_is_none() {
        assert_eq!(api::try_now_cycles(), None);
        assert!(!api::active());
    }

    #[test]
    fn wake_at_schedules_a_timed_wakeup() {
        let woke = Arc::new(AtomicU64::new(0));
        let w = woke.clone();
        let sim = Simulation::new(SimConfig::default());
        let sleeper = sim.spawn_core("sleeper", 64 * 1024, move || {
            api::block();
            w.store(api::now_cycles(), Ordering::Relaxed);
        });
        sim.spawn_core("alarm", 64 * 1024, move || {
            api::wake_at(9_999, sleeper);
        });
        sim.run();
        assert_eq!(woke.load(Ordering::Relaxed), 9_999);
    }

    #[test]
    fn core_stats_and_final_vtime() {
        let sim = Simulation::new(SimConfig::default());
        let a = sim.spawn_core("a", 64 * 1024, || {
            for _ in 0..4 {
                preempt_point(1_000);
            }
        });
        let b = sim.spawn_core("b", 64 * 1024, || {
            api::sleep_until(20_000);
        });
        sim.run();
        let sa = sim.core_stats(a);
        assert_eq!(sa.busy_cycles, 4_000);
        assert_eq!(sa.preempt_points, 4);
        assert_eq!(sa.final_vclock, 4_000);
        let sb = sim.core_stats(b);
        assert_eq!(sb.busy_cycles, 0, "sleeping costs no busy cycles");
        assert_eq!(sb.final_vclock, 20_000);
        assert_eq!(sim.final_vtime(), 20_000);
    }

    #[test]
    fn advance_charges_without_preemption_check() {
        let sim = Simulation::new(SimConfig::default());
        let c = sim.spawn_core("c", 64 * 1024, || {
            api::advance(5_000);
            assert_eq!(api::now_cycles(), 5_000);
        });
        sim.run();
        let s = sim.core_stats(c);
        assert_eq!(s.busy_cycles, 5_000);
        assert_eq!(s.preempt_points, 0);
    }

    #[test]
    fn yield_now_round_robins() {
        let log: Arc<parking::Order> = Arc::default();
        let sim = Simulation::new(SimConfig::default());
        for name in ["a", "b"] {
            let l = log.clone();
            sim.spawn_core("yielder", 64 * 1024, move || {
                for _ in 0..3 {
                    l.push((name, api::now_cycles()));
                    preempt_point(10);
                    api::yield_now();
                }
            });
        }
        sim.run();
        let names: Vec<&str> = log.snapshot().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "b", "a", "b", "a", "b"]);
    }
}
