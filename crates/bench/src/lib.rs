//! # preempt-bench
//!
//! The experiment harness: one module per evaluation artifact of the
//! paper (§6, Figures 1 and 8–13 plus the §6.1 delivery-latency
//! measurement). Each experiment
//!
//! 1. loads the workload at a laptop-scaled size (DESIGN.md §1.4),
//! 2. runs the scheduling configurations on the deterministic
//!    virtual-time simulator, and
//! 3. prints the same rows/series the paper reports and returns them
//!    structured, so `run_all` can regenerate `EXPERIMENTS.md`.
//!
//! Absolute numbers are not expected to match the authors' Xeon testbed;
//! the *shape* (who wins, by what factor, where crossovers fall) is the
//! reproduction target.

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;

use preemptdb::sched::{run, DriverConfig, Policy, RunReport, Runtime};
use preemptdb::workloads::{setup_mixed, MixedWorkload, TpccDb, TpccScale, TpchDb, TpchScale};
use preemptdb::SimConfig;
use std::sync::Arc;

/// Shared knobs for the mixed-workload experiments. `quick()` keeps a
/// full figure under a couple of minutes on a laptop; `full()` stretches
/// durations toward the paper's 30 s runs.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    pub workers: usize,
    /// Virtual run duration, milliseconds.
    pub duration_ms: u64,
    /// High-priority arrival interval, microseconds (paper default 1000).
    pub arrival_us: u64,
    /// High-priority queue capacity per worker (paper default 4).
    pub high_queue: usize,
    /// Batch per arrival; `None` = workers × high_queue (paper default).
    pub batch: Option<usize>,
    pub seed: u64,
}

impl Scenario {
    pub fn quick() -> Scenario {
        Scenario {
            workers: 16,
            duration_ms: 200,
            arrival_us: 1_000,
            high_queue: 4,
            batch: None,
            seed: 42,
        }
    }

    pub fn full() -> Scenario {
        Scenario {
            duration_ms: 2_000,
            ..Scenario::quick()
        }
    }

    pub fn batch_size(&self) -> usize {
        self.batch.unwrap_or(self.workers * self.high_queue)
    }
}

/// The laptop-scaled workload sizes used by all experiments
/// (documented substitution, DESIGN.md §1.4).
pub fn bench_tpcc_scale(warehouses: u64) -> TpccScale {
    TpccScale {
        warehouses,
        districts_per_wh: 10,
        customers_per_district: 300,
        items: 2_000,
        preloaded_orders: 20,
    }
}

pub fn bench_tpch_scale() -> TpchScale {
    TpchScale::default_mix()
}

/// Loads one mixed-workload database (shared by the runs of one figure;
/// the TPC-H side is read-only and TPC-C growth between runs does not
/// affect scheduling metrics).
pub fn load_mixed(workers: usize, seed: u64) -> (Arc<TpccDb>, Arc<TpchDb>) {
    let (_engine, tpcc, tpch) = setup_mixed(
        workers as u64,
        Some(bench_tpcc_scale(workers as u64)),
        Some(bench_tpch_scale()),
        seed,
    );
    (tpcc, tpch)
}

/// Runs the paper's mixed workload under `policy`.
pub fn run_mixed(
    policy: Policy,
    sc: &Scenario,
    tpcc: Arc<TpccDb>,
    tpch: Arc<TpchDb>,
) -> RunReport {
    let sim = SimConfig::default();
    let cfg = DriverConfig {
        policy,
        n_workers: sc.workers,
        shards: 1,
        queue_caps: vec![1, sc.high_queue],
        batch_size: sc.batch_size(),
        arrival_interval: sim.us_to_cycles(sc.arrival_us),
        duration: sim.ms_to_cycles(sc.duration_ms),
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    };
    let factory = MixedWorkload::new(tpcc, tpch, sc.seed);
    run(Runtime::Simulated(sim), cfg, Box::new(factory))
}

/// The three §6.1 competing methods with paper-default settings.
pub fn competing_policies() -> [(&'static str, Policy); 3] {
    [
        ("Wait", Policy::Wait),
        ("Cooperative", Policy::cooperative()),
        ("PreemptDB", Policy::preemptdb()),
    ]
}
