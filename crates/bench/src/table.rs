//! Minimal markdown table printer for experiment output.

/// A markdown table assembled row by row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}:|", "-".repeat(w + 1)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the markdown to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a microsecond value compactly.
pub fn us(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}ms", v / 1000.0)
    } else {
        format!("{v:.1}us")
    }
}

/// Formats a throughput value compactly.
pub fn tps(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["policy", "p50"]);
        t.row(vec!["Wait".into(), "123.0us".into()]);
        t.row(vec!["PreemptDB".into(), "4.2us".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| PreemptDB |"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(42.34), "42.3us");
        assert_eq!(us(42_000.0), "42.0ms");
        assert_eq!(tps(950.0), "950");
        assert_eq!(tps(15_500.0), "15.5k");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
