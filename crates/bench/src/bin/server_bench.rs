//! Network front-door benchmark and self-checking gate (server ISSUE):
//! a closed-loop load generator drives SLO-tagged connections against a
//! `preemptdb-server`, mixing high-class point traffic with low-class
//! scan-heavy traffic under a deliberately tight low-class admission
//! limit, and verifies:
//!
//! 1. exact accounting — every request the clients sent got exactly one
//!    typed reply (`Resp` or `Overloaded`), and client-side counts match
//!    the server's counters;
//! 2. admission engaged — the throttled low class saw `Overloaded`
//!    frames, while the unthrottled high class saw none;
//! 3. no unbounded queueing — in-flight drains to zero once the load
//!    stops;
//! 4. conservation — the ledger total equals seed + 2 × committed
//!    deposits (no lost or duplicated commits under concurrent load);
//! 5. the high class held its (generous, CI-safe) p99 latency SLO while
//!    the low class was saturating admission.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin server_bench [-- --check|--full]
//! cargo run --release -p preempt-bench --bin server_bench -- --addr HOST:PORT
//! ```
//!
//! `--check` runs the gate at CI scale. `--full` stretches the run and
//! rewrites `BENCH_server.json` at the repo root. `--addr` drives an
//! externally started server instead (transport smoke only: the gate's
//! server-side counters are not reachable remotely).

use std::process::ExitCode;
use std::time::Duration;

use preemptdb_server::loadgen::{self, GenConfig, GenReport, Mix};
use preemptdb_server::proto::SloClass;
use preemptdb_server::{ClassLimits, Server, ServerConfig, ServerStats};

/// Generous high-class p99 bound (µs). Real p99 on an idle box is tens
/// of microseconds; the slack absorbs noisy shared CI runners without
/// letting a scheduling regression (ms-scale head-of-line blocking)
/// through.
const HIGH_P99_SLO_US: f64 = 20_000.0;

struct RunResult {
    high: GenReport,
    low: GenReport,
    stats: ServerStats,
    ledger_total: u64,
    seeded_total: u64,
    duration_ms: u64,
    workers: usize,
}

fn run_gate(duration_ms: u64, workers: usize) -> RunResult {
    let mut cfg = ServerConfig::default().workers(workers);
    cfg.accounts = 128;
    // Low class: tight token bucket + small in-flight cap, so a
    // closed-loop pack of 8 connections must overrun it and collect
    // Overloaded frames. High class: effectively unthrottled.
    cfg.low = ClassLimits {
        tps: Some(200),
        burst: 8,
        max_in_flight: 4,
    };
    cfg.high = ClassLimits::unlimited(workers as u64 * 8);
    let seeded_total = cfg.accounts * cfg.initial_balance;

    let server = Server::start(cfg).expect("server start");
    let addr = server.local_addr().to_string();

    let low_cfg = GenConfig {
        addr: addr.clone(),
        class: SloClass::Low,
        connections: 8,
        mix: Mix::scan_heavy(),
        duration: Duration::from_millis(duration_ms),
        seed: 0x5EED_0001,
    };
    let high_cfg = GenConfig {
        addr,
        class: SloClass::High,
        connections: 4,
        mix: Mix::point(),
        duration: Duration::from_millis(duration_ms),
        seed: 0x5EED_0002,
    };
    let low_thread = std::thread::spawn(move || loadgen::run(&low_cfg));
    let high = loadgen::run(&high_cfg);
    let low = low_thread.join().expect("low-class loadgen");

    // The generators joined their connections, so every reply has been
    // read; give the server its drain check before reading counters.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let s = server.stats();
        if s.in_flight == [0, 0] || std::time::Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let engine = server.engine().clone();
    let (table, oids) = server.accounts();
    let mut tx = engine.begin_si();
    let ledger_total: u64 = oids
        .iter()
        .map(|&oid| {
            let raw = tx.read(&table, oid).expect("row visible");
            u64::from_le_bytes(raw[..8].try_into().unwrap())
        })
        .sum();
    tx.abort();

    server.shutdown();
    RunResult {
        high,
        low,
        stats,
        ledger_total,
        seeded_total,
        duration_ms,
        workers,
    }
}

fn check(r: &RunResult) -> Vec<String> {
    let mut failures = Vec::new();
    let mut fail = |cond: bool, msg: String| {
        if !cond {
            failures.push(msg);
        }
    };

    fail(
        r.high.errors == 0 && r.low.errors == 0,
        format!(
            "transport errors: high {} low {}",
            r.high.errors, r.low.errors
        ),
    );
    fail(
        r.high.completed > 0,
        "high class completed no requests".to_string(),
    );

    // 1. Exact accounting, client view vs server counters.
    let client_completed = r.high.completed + r.low.completed;
    let server_replies = r.stats.replies[0] + r.stats.replies[1];
    fail(
        client_completed == server_replies,
        format!("client saw {client_completed} responses, server wrote {server_replies}"),
    );
    let client_rejected = r.high.rejected + r.low.rejected;
    let server_rejected = r.stats.rejected[0] + r.stats.rejected[1];
    fail(
        client_rejected == server_rejected,
        format!("client saw {client_rejected} Overloaded frames, server counted {server_rejected}"),
    );

    // 2. Admission engaged on the throttled class only.
    fail(
        r.low.rejected > 0,
        "low-class admission never rejected (gate not engaged)".to_string(),
    );
    fail(
        r.high.rejected == 0,
        format!(
            "high class was rejected {} times despite headroom",
            r.high.rejected
        ),
    );

    // 3. No unbounded queueing.
    fail(
        r.stats.in_flight == [0, 0],
        format!("in-flight never drained: {:?}", r.stats.in_flight),
    );

    // 4. Conservation.
    let expected = r.seeded_total + 2 * r.stats.committed_deposits;
    fail(
        r.ledger_total == expected,
        format!(
            "ledger total {} != seeded {} + 2 x {} committed deposits",
            r.ledger_total, r.seeded_total, r.stats.committed_deposits
        ),
    );
    fail(
        r.stats.protocol_errors == 0,
        format!("{} protocol errors from well-formed clients", r.stats.protocol_errors),
    );

    // 5. High-class latency SLO under mixed load.
    let p99 = r.high.rtt_us(0.99);
    fail(
        p99 > 0.0 && p99 < HIGH_P99_SLO_US,
        format!("high-class client p99 {p99:.0} us outside (0, {HIGH_P99_SLO_US:.0}) us"),
    );

    failures
}

fn class_json(name: &str, conns: usize, g: &GenReport, freq_hz: u64) -> String {
    let to_us = |cycles: u64| {
        if freq_hz == 0 {
            0.0
        } else {
            cycles as f64 / freq_hz as f64 * 1e6
        }
    };
    format!(
        "    {{\"class\": \"{name}\", \"connections\": {conns}, \"completed\": {}, \
         \"ok\": {}, \"failed\": {}, \"panicked\": {}, \"rejected\": {}, \
         \"client_p50_us\": {:.1}, \"client_p99_us\": {:.1}, \
         \"server_p50_us\": {:.1}, \"server_p99_us\": {:.1}}}",
        g.completed,
        g.ok,
        g.failed,
        g.panicked,
        g.rejected,
        g.rtt_us(0.50),
        g.rtt_us(0.99),
        to_us(g.server_latency.percentile(0.50)),
        to_us(g.server_latency.percentile(0.99)),
    )
}

fn write_json(path: &str, r: &RunResult) -> std::io::Result<()> {
    let doc = format!(
        "{{\n  \"figure\": \"server_front_door\",\n  \"description\": \"closed-loop TCP load, \
         SLO-tagged connections, per-class admission backpressure\",\n  \
         \"duration_ms\": {},\n  \"workers\": {},\n  \"committed_deposits\": {},\n  \
         \"conservation_holds\": {},\n  \"classes\": [\n{},\n{}\n  ]\n}}\n",
        r.duration_ms,
        r.workers,
        r.stats.committed_deposits,
        r.ledger_total == r.seeded_total + 2 * r.stats.committed_deposits,
        class_json("high", 4, &r.high, r.high.freq_hz),
        class_json("low", 8, &r.low, r.low.freq_hz),
    );
    std::fs::write(path, doc)
}

fn print_summary(r: &RunResult) {
    for (name, g) in [("high", &r.high), ("low", &r.low)] {
        println!(
            "{name:>5}: completed={} ok={} rejected={} p50={:.0}us p99={:.0}us",
            g.completed,
            g.ok,
            g.rejected,
            g.rtt_us(0.50),
            g.rtt_us(0.99),
        );
    }
    println!(
        "server: replies={} rejected={} deposits={} ledger_delta={}",
        r.stats.replies[0] + r.stats.replies[1],
        r.stats.rejected[0] + r.stats.rejected[1],
        r.stats.committed_deposits,
        r.ledger_total - r.seeded_total,
    );
}

/// Transport smoke against an externally started server (no access to
/// its counters — only client-side invariants are checkable).
fn run_external(addr: &str) -> ExitCode {
    let cfg = GenConfig {
        addr: addr.to_string(),
        class: SloClass::High,
        connections: 2,
        mix: Mix::point(),
        duration: Duration::from_millis(300),
        seed: 0x5EED_0003,
    };
    let report = loadgen::run(&cfg);
    println!(
        "external {addr}: completed={} ok={} rejected={} errors={} p99={:.0}us",
        report.completed,
        report.ok,
        report.rejected,
        report.errors,
        report.rtt_us(0.99),
    );
    if report.errors == 0 && report.completed > 0 && report.ok > 0 {
        println!("server_bench: external smoke passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("server_bench FAIL: external smoke saw errors or no completions");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--addr") {
        let addr = args.get(i + 1).map(String::as_str).unwrap_or("");
        if addr.is_empty() {
            eprintln!("error: --addr needs HOST:PORT");
            return ExitCode::FAILURE;
        }
        return run_external(addr);
    }

    let full = args.iter().any(|a| a == "--full");
    let (duration_ms, workers) = if full { (2_000, 4) } else { (400, 4) };
    eprintln!("running server front-door gate ({duration_ms} ms, {workers} workers) ...");
    let r = run_gate(duration_ms, workers);
    print_summary(&r);

    let failures = check(&r);
    if full && failures.is_empty() {
        match write_json("BENCH_server.json", &r) {
            Ok(()) => println!("wrote BENCH_server.json"),
            Err(e) => eprintln!("server_bench: could not write BENCH_server.json: {e}"),
        }
    }

    if failures.is_empty() {
        println!("server_bench: front-door gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("server_bench FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
