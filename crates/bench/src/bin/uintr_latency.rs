//! Regenerates the §6.1 delivery-latency measurement: user-level vs
//! kernel-mediated (signal) interrupt delivery between two POSIX threads.

use preempt_bench::uintr_latency;

fn main() {
    let samples = if std::env::args().any(|a| a == "--full") {
        5_000
    } else {
        1_000
    };
    eprintln!("measuring delivery latency over {samples} samples per mechanism ...");
    uintr_latency(samples).print();
    println!(
        "note: on a single-core host both paths include OS-scheduler noise;\n\
         medians carry the comparison (see DESIGN.md §1.1)."
    );
}
