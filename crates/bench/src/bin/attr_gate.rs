//! The latency-provenance attribution gate (DESIGN.md §15): the
//! paper's thesis — preemption wins by removing queue-wait for
//! high-priority transactions — as a machine-checked artifact.
//!
//! Scenario: the Figure 12 mixed workload under Wait and Preempt on the
//! same seed, with the trace session, metrics registry, and provenance
//! plane all enabled. Two independent measurement paths run in
//! parallel: workers feed per-class phase histograms into the registry
//! directly, and [`reconstruct`] re-derives the same numbers from
//! nothing but the per-worker trace rings.
//!
//! Self-checking — the run fails (nonzero exit) unless:
//!
//! 1. reconstruction is lossless: no ring drops, no unmatched or
//!    in-flight spans, no window mismatches, no missed exemplar
//!    captures;
//! 2. the two planes reconcile exactly: per class and phase, the
//!    registry histogram's count and cycle sum equal the trace-side
//!    attribution (a lost event or double charge shows up here);
//! 3. phase sums reconcile with measured end-to-end latency: per
//!    class, the sum-of-phases p99 matches the independent metrics
//!    plane's p99 within 1% plus one log-bucket width, and the means
//!    match within 1%;
//! 4. the thesis holds: Preempt's high-class mean queue-wait
//!    attribution is lower than Wait's on the same seed;
//! 5. two same-seed runs produce byte-identical attribution
//!    (`canonical_text`);
//! 6. the flight recorder fires on SLO breach: a rerun with the SLO
//!    pinned to the observed p99 captures exemplars, every exemplar
//!    breaches its bound, and its phases sum to its latency.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin attr_gate [-- --check] [-- --dump DIR]
//! ```
//!
//! `--check` (alias `--quick`) shrinks the run for CI; `--dump DIR`
//! writes `BENCH_attr.json` (the attribution artifact) and
//! `flight_exemplars.json` (chrome://tracing dump of the worst SLO
//! offenders) into `DIR`.

use std::fmt::Write as _;
use std::process::ExitCode;

use preempt_bench::{bench_tpcc_scale, bench_tpch_scale, Table};
use preemptdb::metrics::{MetricsConfig, MetricsRegistry};
use preemptdb::prov::{
    exemplars_to_chrome_json, AttributionReport, Phase, ProvConfig, CLASS_LABELS,
};
use preemptdb::sched::{
    run, DriverConfig, Histogram, Policy, RobustnessConfig, RunReport, Runtime,
};
use preemptdb::trace::{TraceConfig, TraceSession};
use preemptdb::workloads::{kinds, setup_mixed, MixedWorkload};
use preemptdb::SimConfig;

/// Relative width of one legacy log-histogram bucket (32 sub-buckets
/// per octave): the registry plane's p99 is a bucket lower bound, so
/// cross-plane p99 agreement is only meaningful to this resolution.
const BUCKET_WIDTH: f64 = 1.0 / 32.0;

/// Transaction kinds the workers tag high-priority (`priority > 0`);
/// everything else in the mixed workload is the low class.
const HIGH_KINDS: [&str; 2] = [kinds::NEW_ORDER, kinds::PAYMENT];

/// The gate scenario: the Figure 12 mixed workload, sized to produce
/// enough completions per class that a p99 is meaningful.
#[derive(Clone, Copy)]
struct Scenario {
    workers: usize,
    duration_ms: u64,
    arrival_us: u64,
    high_queue: usize,
    seed: u64,
}

impl Scenario {
    fn quick() -> Scenario {
        Scenario {
            workers: 8,
            duration_ms: 60,
            arrival_us: 1_000,
            high_queue: 8,
            seed: 42,
        }
    }

    fn full() -> Scenario {
        Scenario {
            duration_ms: 200,
            ..Scenario::quick()
        }
    }

    fn batch_size(&self) -> usize {
        self.workers * self.high_queue
    }
}

/// One deterministic simulated run with the full provenance plane
/// enabled. The database is rebuilt per run so every run replays the
/// same virtual-time execution from the same initial state.
fn run_attributed(policy: Policy, sc: &Scenario, slo_cycles: [u64; 2]) -> RunReport {
    let sim = SimConfig::default();
    let (_engine, tpcc, tpch) = setup_mixed(
        sc.workers as u64,
        Some(bench_tpcc_scale(sc.workers as u64)),
        Some(bench_tpch_scale()),
        sc.seed,
    );
    let cfg = DriverConfig {
        policy,
        n_workers: sc.workers,
        shards: 1,
        queue_caps: vec![1, sc.high_queue],
        batch_size: sc.batch_size(),
        arrival_interval: sim.us_to_cycles(sc.arrival_us),
        duration: sim.ms_to_cycles(sc.duration_ms),
        always_interrupt: false,
        robustness: RobustnessConfig {
            max_full_retries: 1_000,
            ..Default::default()
        },
        recovery: Default::default(),
        metrics: Some(MetricsRegistry::new(MetricsConfig::default())),
        // Sized so the rings hold the whole run: check 1 asserts zero
        // drops, because a lossy trace cannot certify attribution.
        trace: Some(TraceSession::new(TraceConfig {
            capacity: 1 << 20,
            ..TraceConfig::default()
        })),
        prov: Some(ProvConfig {
            slo_cycles,
            exemplars_per_worker: 8,
        }),
    };
    let factory = MixedWorkload::new(tpcc, tpch, sc.seed);
    run(Runtime::Simulated(sim), cfg, Box::new(factory))
}

/// The attribution report, or a gate failure if the run lacks one.
fn attribution<'a>(label: &str, r: &'a RunReport, failures: &mut Vec<String>) -> Option<&'a AttributionReport> {
    let attr = r.attribution.as_ref();
    if attr.is_none() {
        failures.push(format!("{label}: run produced no attribution report"));
    }
    attr
}

/// Per-class end-to-end latency from the *legacy* metrics plane (the
/// per-kind histograms predating provenance) — the independent p99 the
/// phase sums must reconcile with.
fn class_latency(r: &RunReport, high: bool) -> Histogram {
    let mut h = Histogram::new();
    for (kind, m) in r.metrics.kinds() {
        if HIGH_KINDS.contains(&kind) == high {
            h.merge(&m.latency);
        }
    }
    h
}

/// Check 1: the reconstruction is lossless — anything dropped or
/// unreconciled disqualifies the attribution as evidence.
fn check_lossless(label: &str, r: &RunReport, failures: &mut Vec<String>) {
    let Some(attr) = attribution(label, r, failures) else {
        return;
    };
    for (what, n) in [
        ("ring_dropped", attr.ring_dropped),
        ("unmatched", attr.unmatched),
        ("incomplete", attr.incomplete),
        ("window_mismatch", attr.window_mismatch),
        ("flight_missed", r.flight_missed),
    ] {
        if n != 0 {
            failures.push(format!("{label}: {what} = {n}, expected 0"));
        }
    }
    if attr.attributed == 0 {
        failures.push(format!("{label}: no spans attributed"));
    }
    for (c, cls) in attr.classes.iter().enumerate() {
        if cls.completed == 0 {
            failures.push(format!("{label}: class {} has no completions", CLASS_LABELS[c]));
        }
    }
}

/// Checks 2–3: the trace-side attribution reconciles with the
/// registry-side phase histograms (exactly) and with the legacy
/// end-to-end latency plane (p99 within 1% + one bucket).
fn check_reconciles(label: &str, r: &RunReport, failures: &mut Vec<String>) {
    let Some(attr) = attribution(label, r, failures) else {
        return;
    };
    let Some(snap) = r.metrics_snapshot.as_ref() else {
        failures.push(format!("{label}: run produced no metrics snapshot"));
        return;
    };
    for (c, cls) in attr.classes.iter().enumerate() {
        let high = c == 1;
        // Exact: every phase histogram in the registry carries one
        // sample per commit, and its cycle sum equals the trace-side
        // phase sum. Any drift means an event was lost or a phase
        // charged twice on one plane only.
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let reg = snap.fixed(preemptdb::metrics::FixedHist::phase(i, high));
            if reg.count() != cls.completed {
                failures.push(format!(
                    "{label}: class {} phase {} registry count {} != attributed completions {}",
                    CLASS_LABELS[c],
                    phase.label(),
                    reg.count(),
                    cls.completed
                ));
            }
            if reg.sum != cls.phase_sums[i] {
                failures.push(format!(
                    "{label}: class {} phase {} registry sum {} != trace-side sum {}",
                    CLASS_LABELS[c],
                    phase.label(),
                    reg.sum,
                    cls.phase_sums[i]
                ));
            }
        }
        // Identity: phase sums equal the end-to-end population. The
        // legacy per-kind plane measured `finished - created` per
        // request wholly independently of the phase vectors.
        let legacy = class_latency(r, high);
        if legacy.count() != cls.completed {
            failures.push(format!(
                "{label}: class {} legacy completion count {} != attributed {}",
                CLASS_LABELS[c],
                legacy.count(),
                cls.completed
            ));
            continue;
        }
        let phase_total: u64 = cls.phase_sums.iter().sum();
        let legacy_total = legacy.mean() * legacy.count() as f64;
        if relative_gap(phase_total as f64, legacy_total) > 0.01 {
            failures.push(format!(
                "{label}: class {} phase-sum total {} vs end-to-end total {:.0} off by > 1%",
                CLASS_LABELS[c], phase_total, legacy_total
            ));
        }
        // p99: attribution is sample-exact; the legacy histogram
        // reports a log-bucket lower bound, so allow one bucket width
        // on top of the 1% reconciliation tolerance.
        let attr_p99 = cls.e2e.p99 as f64;
        let legacy_p99 = legacy.percentile(99.0) as f64;
        if relative_gap(attr_p99, legacy_p99) > 0.01 + BUCKET_WIDTH {
            failures.push(format!(
                "{label}: class {} phase-sum p99 {:.0} vs end-to-end p99 {:.0} \
                 off by > 1% + bucket width",
                CLASS_LABELS[c], attr_p99, legacy_p99
            ));
        }
    }
}

fn relative_gap(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check" || a == "--quick");
    let dump_dir = args
        .iter()
        .position(|a| a == "--dump")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let sc = if check { Scenario::quick() } else { Scenario::full() };
    let sim = SimConfig::default();
    let mut failures: Vec<String> = Vec::new();

    let no_slo = [u64::MAX, u64::MAX];
    let wait = run_attributed(Policy::Wait, &sc, no_slo);
    let preempt = run_attributed(Policy::preemptdb(), &sc, no_slo);
    let rerun = run_attributed(Policy::preemptdb(), &sc, no_slo);

    // Checks 1–3 on both policies.
    for (label, r) in [("wait", &wait), ("preempt", &preempt)] {
        check_lossless(label, r, &mut failures);
        check_reconciles(label, r, &mut failures);
    }

    // Attribution table: where every committed transaction's cycles
    // went, per class, under each policy.
    let mut table = Table::new(
        format!(
            "Phase attribution, mean cycles per completion ({} ms mixed workload, seed {})",
            sc.duration_ms, sc.seed
        ),
        &["policy", "class", "n", "queue", "run", "preempted", "latch", "retry", "handler", "e2e p99"],
    );
    for (label, r) in [("wait", &wait), ("preempt", &preempt)] {
        if let Some(attr) = r.attribution.as_ref() {
            for (c, cls) in attr.classes.iter().enumerate() {
                table.row(vec![
                    label.into(),
                    CLASS_LABELS[c].into(),
                    cls.completed.to_string(),
                    format!("{:.0}", cls.phase_mean(Phase::Queue)),
                    format!("{:.0}", cls.phase_mean(Phase::Run)),
                    format!("{:.0}", cls.phase_mean(Phase::Preempted)),
                    format!("{:.0}", cls.phase_mean(Phase::Latch)),
                    format!("{:.0}", cls.phase_mean(Phase::Retry)),
                    format!("{:.0}", cls.phase_mean(Phase::Handler)),
                    cls.e2e.p99.to_string(),
                ]);
            }
        }
    }
    table.print();

    // Check 4 — the thesis: preemption removes high-class queue-wait.
    let mut queue_shift = (0.0, 0.0);
    if let (Some(w), Some(p)) = (wait.attribution.as_ref(), preempt.attribution.as_ref()) {
        let wq = w.classes[1].phase_mean(Phase::Queue);
        let pq = p.classes[1].phase_mean(Phase::Queue);
        queue_shift = (wq, pq);
        if pq >= wq {
            failures.push(format!(
                "thesis: Preempt high-class mean queue-wait {pq:.0} not below Wait's {wq:.0}"
            ));
        } else {
            println!(
                "thesis: high-class mean queue-wait {:.0} (wait) -> {:.0} cycles (preempt), {:.1}x lower",
                wq,
                pq,
                wq / pq.max(1.0)
            );
        }
    }

    // Check 5 — determinism: byte-identical attribution on the same seed.
    match (preempt.attribution.as_ref(), rerun.attribution.as_ref()) {
        (Some(a), Some(b)) if a.canonical_text() == b.canonical_text() => {
            println!(
                "determinism: two same-seed runs produced byte-identical attribution \
                 ({} spans)",
                a.attributed
            );
        }
        _ => failures.push("same-seed runs diverged in attribution".into()),
    }

    // Check 6 — the flight recorder. No bound: zero exemplars. Bound
    // pinned to the observed per-class p99: the tail (≈1% of each
    // class) must be captured, every exemplar must breach its bound,
    // and its phases must sum to its recorded latency.
    if !wait.exemplars.is_empty() || !preempt.exemplars.is_empty() {
        failures.push("flight recorder captured exemplars with no SLO bound set".into());
    }
    let slo = wait.attribution.as_ref().map(|a| [a.classes[0].e2e.p99, a.classes[1].e2e.p99]);
    let breached = slo.map(|slo| run_attributed(Policy::Wait, &sc, slo));
    if let (Some(slo), Some(b)) = (slo, breached.as_ref()) {
        check_lossless("wait+slo", b, &mut failures);
        if b.exemplars.is_empty() {
            failures.push("flight recorder captured nothing with the SLO at the observed p99".into());
        }
        for ex in &b.exemplars {
            if ex.latency <= ex.slo {
                failures.push(format!(
                    "exemplar req {} captured without breaching ({} <= {})",
                    ex.req_id, ex.latency, ex.slo
                ));
            }
            if ex.slo != slo[usize::from(ex.class != 0)] {
                failures.push(format!("exemplar req {} recorded the wrong SLO bound", ex.req_id));
            }
            if ex.phases.iter().sum::<u64>() != ex.latency {
                failures.push(format!(
                    "exemplar req {}: phases sum to {} but latency is {}",
                    ex.req_id,
                    ex.phases.iter().sum::<u64>(),
                    ex.latency
                ));
            }
        }
        println!(
            "flight recorder: {} exemplars captured at SLO [low {}, high {}] cycles, worst overage {}",
            b.exemplars.len(),
            slo[0],
            slo[1],
            b.exemplars.first().map(|e| e.overage()).unwrap_or(0)
        );
    }

    // Artifacts: the attribution JSON and the chrome://tracing dump of
    // the worst offenders (open in chrome://tracing or ui.perfetto.dev).
    if let Some(dir) = dump_dir {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"scenario\":{{\"workers\":{},\"duration_ms\":{},\"arrival_us\":{},\"seed\":{}}},",
            sc.workers, sc.duration_ms, sc.arrival_us, sc.seed
        );
        let _ = write!(
            out,
            "\"gate\":{{\"high_queue_mean_wait\":{:.1},\"high_queue_mean_preempt\":{:.1},\
             \"exemplars_captured\":{}}},",
            queue_shift.0,
            queue_shift.1,
            breached.as_ref().map(|b| b.exemplars.len()).unwrap_or(0)
        );
        let empty = AttributionReport::default();
        let _ = write!(
            out,
            "\"wait\":{},\"preempt\":{}}}",
            wait.attribution.as_ref().unwrap_or(&empty).to_json(),
            preempt.attribution.as_ref().unwrap_or(&empty).to_json()
        );
        let exemplars = breached.as_ref().map(|b| b.exemplars.as_slice()).unwrap_or(&[]);
        let chrome = exemplars_to_chrome_json(exemplars, sim.freq_hz);
        for (name, content) in [("BENCH_attr.json", &out), ("flight_exemplars.json", &chrome)] {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                failures.push(format!("dump: writing {} failed: {e}", path.display()));
            } else {
                println!("dump: wrote {}", path.display());
            }
        }
    }

    if failures.is_empty() {
        println!("attr_gate: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("attr_gate FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
