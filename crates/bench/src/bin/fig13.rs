//! Regenerates Figure 13: robustness across high-priority arrival
//! intervals (geomean end-to-end latency of NewOrder and Q2).

use preempt_bench::{fig13, Scenario};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let arrivals: &[u64] = if full {
        &[50, 158, 500, 1_580, 5_000, 15_800, 50_000]
    } else {
        &[50, 500, 5_000, 50_000]
    };
    eprintln!("running fig13 with {sc:?} arrivals(us)={arrivals:?} ...");
    fig13(&sc, arrivals).print();
}
