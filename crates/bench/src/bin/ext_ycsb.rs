//! Extension experiment: do the paper's conclusions generalize beyond
//! TPC-C? Same mixed-workload design, but the high-priority stream is
//! YCSB-B (95/5 read/update, zipfian) instead of NewOrder/Payment.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin ext_ycsb
//! ```

use preempt_bench::{bench_tpch_scale, Scenario, Table};
use preemptdb::sched::{run, DriverConfig, Policy, Request, Runtime, WorkOutcome, WorkloadFactory};
use preemptdb::workloads::{Q2Params, TpchDb, YcsbConfig, YcsbDb, YcsbMix};
use preemptdb::SimConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Q2 lows + YCSB highs.
struct YcsbQ2 {
    ycsb: Arc<YcsbDb>,
    tpch: Arc<TpchDb>,
    rng: SmallRng,
}

impl WorkloadFactory for YcsbQ2 {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let params = Q2Params::generate(&mut self.rng, &self.tpch.scale);
        let db = self.tpch.clone();
        Some(Request::new("q2", 0, now, move || {
            std::hint::black_box(db.q2(&params).expect("read-only").len());
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        let db = self.ycsb.clone();
        let seed = self.rng.random::<u64>();
        Some(Request::new("ycsb", 1, now, move || {
            let mut rng = SmallRng::seed_from_u64(seed);
            WorkOutcome::committed(db.run_op(YcsbMix::B, &mut rng))
        }))
    }
}

fn main() {
    let sc = Scenario::quick();
    let mut t = Table::new(
        "Extension: YCSB-B high-priority stream vs Q2 (paper's design, new workload)",
        &["policy", "ycsb p50", "ycsb p99", "ycsb tps", "q2 p99", "q2 tps"],
    );
    for (name, policy) in [
        ("Wait", Policy::Wait),
        ("Cooperative", Policy::cooperative()),
        ("PreemptDB", Policy::preemptdb()),
    ] {
        let engine = preemptdb::Engine::new(preemptdb::EngineConfig::default());
        let ycsb = YcsbDb::load(&engine, YcsbConfig::default(), 21).unwrap();
        let tpch = TpchDb::load(&engine, bench_tpch_scale(), 22).unwrap();
        let sim = SimConfig::default();
        let cfg = DriverConfig {
            policy,
            n_workers: sc.workers,
            shards: 1,
            queue_caps: vec![1, sc.high_queue],
            batch_size: sc.batch_size(),
            arrival_interval: sim.us_to_cycles(sc.arrival_us),
            duration: sim.ms_to_cycles(sc.duration_ms),
            always_interrupt: false,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        let factory = YcsbQ2 {
            ycsb,
            tpch,
            rng: SmallRng::seed_from_u64(23),
        };
        let r = run(Runtime::Simulated(sim), cfg, Box::new(factory));
        t.row(vec![
            name.into(),
            format!("{:.1}us", r.latency_us("ycsb", 50.0)),
            format!("{:.1}us", r.latency_us("ycsb", 99.0)),
            format!("{:.0}", r.tps("ycsb")),
            format!("{:.1}us", r.latency_us("q2", 99.0)),
            format!("{:.0}", r.tps("q2")),
        ]);
    }
    t.print();
    println!("the latency gap should mirror Figure 10: the mechanism is workload-agnostic.");
}
