//! Dumps a preemption event trace from a deterministic simulator run.
//!
//! Runs the Figure 9 mixed TPC-C + TPC-H scenario under the preemptive
//! policy with `preempt-trace` recording enabled, prints the derived
//! preemption-latency breakdown (send→notice, notice→handler,
//! handler→switch), and writes the merged trace as a chrome://tracing
//! JSON file — open it at `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin trace_dump -- [out.json]
//! ```

use preemptdb::trace::{LatencyStats, TraceConfig, TraceSession};
use preemptdb::sched::{run, DriverConfig, Policy, Runtime};
use preemptdb::workloads::{setup_mixed, MixedWorkload};
use preemptdb::SimConfig;

fn row(name: &str, s: &LatencyStats, freq_hz: u64) {
    let us = |c: u64| c as f64 * 1e6 / freq_hz as f64;
    println!(
        "  {name:<18} n={:<6} min={:>8.3}us p50={:>8.3}us p99={:>8.3}us max={:>8.3}us",
        s.count,
        us(s.min),
        us(s.p50),
        us(s.p99),
        us(s.max),
    );
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    let sim = SimConfig::default();
    let workers = 8usize;
    let (_e, tpcc, tpch) = setup_mixed(workers as u64, None, None, 42);
    // Latch traffic would evict the rare preemption-lifecycle events
    // this dump exists to show; keep only the interesting kinds.
    let trace = TraceSession::new(TraceConfig::default().without_latch_events());
    let cfg = DriverConfig {
        policy: Policy::preemptdb(),
        n_workers: workers,
        shards: 1,
        queue_caps: vec![1, 100],
        batch_size: 100 * workers,
        arrival_interval: sim.us_to_cycles(1_000),
        duration: sim.ms_to_cycles(50),
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: Some(trace.clone()),
        metrics: None,
        prov: None,
    };
    let factory = MixedWorkload::new(tpcc, tpch, 42);
    let report = run(Runtime::Simulated(sim), cfg, Box::new(factory));

    let merged = report.trace.as_ref().expect("trace session was installed");
    println!(
        "merged trace: {} events across {} rings ({} dropped)",
        merged.len(),
        merged.ring_labels.len(),
        merged.dropped
    );
    if let Some(b) = &report.preempt_breakdown {
        println!("preemption latency breakdown (virtual time @ {} Hz):", sim.freq_hz);
        row("send->notice", &b.send_to_notice, sim.freq_hz);
        row("notice->handler", &b.notice_to_handler, sim.freq_hz);
        row("handler->switch", &b.handler_to_switch, sim.freq_hz);
        row("send->handler", &b.send_to_handler, sim.freq_hz);
    }

    let json = merged.to_chrome_json(sim.freq_hz);
    std::fs::write(&out, &json).expect("write trace file");
    println!("wrote {} bytes to {out} (load in chrome://tracing)", json.len());
}
