//! Regenerates Figure 9: mixed-workload throughput scalability across
//! worker counts under Wait / Cooperative / PreemptDB.

use preempt_bench::{fig09, Scenario};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let workers: &[usize] = if full {
        &[1, 2, 4, 8, 16]
    } else {
        &[2, 8, 16]
    };
    eprintln!("running fig09 with {sc:?} workers={workers:?} ...");
    fig09(&sc, workers).print();
}
