//! Regenerates Figure 9: mixed-workload throughput scalability across
//! worker counts under Wait / Cooperative / PreemptDB — plus the
//! sharded-plane scaling gate (ISSUE 8), which is self-checking:
//!
//! 1. at every sweep point with >= 4 workers, the sharded plane's
//!    throughput is at least the single-global-queue baseline's;
//! 2. sharded throughput grows strictly monotonically with the worker
//!    count (the per-shard dispatch cores keep the plane worker-bound
//!    where one scheduler saturates).
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin fig09 [-- --check|--full]
//! ```
//!
//! `--check` runs only the scaling gate at CI scale (no tables, no file
//! output). `--full` stretches the sweep and rewrites `BENCH_fig09.json`
//! at the repo root (the checked-in machine-readable record).

use std::process::ExitCode;

use preempt_bench::{fig09, fig09_sharded, Scenario, ShardScalePoint};

fn write_json(path: &str, duration_ms: u64, points: &[ShardScalePoint]) -> std::io::Result<()> {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"workers\": {}, \"shards\": {}, \"single_queue_tps\": {:.0}, \
             \"sharded_tps\": {:.0}, \"speedup\": {:.3}}}",
            p.workers, p.shards, p.baseline_tps, p.sharded_tps, p.speedup()
        ));
    }
    let doc = format!(
        "{{\n  \"figure\": \"fig09_sharded\",\n  \"description\": \"dispatch-bound point-transaction \
         throughput, sharded scheduler plane vs single global run queue\",\n  \
         \"duration_ms\": {duration_ms},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(path, doc)
}

fn check_points(points: &[ShardScalePoint]) -> Vec<String> {
    let mut failures = Vec::new();
    for p in points {
        if p.workers >= 4 && p.sharded_tps < p.baseline_tps {
            failures.push(format!(
                "{} workers: sharded {:.0} tps fell below the single-queue baseline {:.0} tps",
                p.workers, p.sharded_tps, p.baseline_tps
            ));
        }
    }
    for w in points.windows(2) {
        if w[1].sharded_tps <= w[0].sharded_tps {
            failures.push(format!(
                "sharded throughput is not monotonic: {:.0} tps at {} workers vs {:.0} at {}",
                w[1].sharded_tps, w[1].workers, w[0].sharded_tps, w[0].workers
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let full = std::env::args().any(|a| a == "--full");
    let check = std::env::args().any(|a| a == "--check");

    if !check {
        let sc = if full {
            Scenario::full()
        } else {
            Scenario::quick()
        };
        let workers: &[usize] = if full {
            &[1, 2, 4, 8, 16]
        } else {
            &[2, 8, 16]
        };
        eprintln!("running fig09 with {sc:?} workers={workers:?} ...");
        fig09(&sc, workers).print();
    }

    let (duration_ms, counts): (u64, &[usize]) = if full {
        (50, &[1, 2, 4, 8, 16])
    } else {
        (15, &[2, 4, 8])
    };
    eprintln!("running fig09 sharded-plane sweep ({duration_ms} ms, workers {counts:?}) ...");
    let (table, points) = fig09_sharded(duration_ms, counts);
    table.print();

    let failures = check_points(&points);
    if full && failures.is_empty() {
        match write_json("BENCH_fig09.json", duration_ms, &points) {
            Ok(()) => println!("wrote BENCH_fig09.json"),
            Err(e) => eprintln!("fig09: could not write BENCH_fig09.json: {e}"),
        }
    }

    if failures.is_empty() {
        println!("fig09: sharded scaling gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fig09 FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
