//! Regenerates Figure 10: end-to-end latency percentiles of NewOrder
//! (top) and Q2 (bottom) under the three scheduling policies.

use preempt_bench::{fig10, Scenario};

fn main() {
    let sc = if std::env::args().any(|a| a == "--full") {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    eprintln!("running fig10 with {sc:?} ...");
    let (top, bottom) = fig10(&sc);
    top.print();
    bottom.print();
}
