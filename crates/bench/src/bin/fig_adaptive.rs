//! Adaptive starvation-threshold controller vs the static sweep
//! (paper §6.4 leaves automatic `L_max` tuning as future work; this
//! experiment closes the loop).
//!
//! Scenario: the Figure 12 mixed workload with a deterministic mid-run
//! **load shift** — the high-priority stream runs light for the first
//! half, then jumps to the full batch rate. Any static `L_max` is
//! stranded on the wrong side of the trade-off in one of the two
//! regimes; the closed-loop controller re-converges within a few
//! evaluation windows of the shift.
//!
//! Post-shift numbers are exact, not sampled: determinism makes a
//! `duration = shift` run a byte-identical prefix of the full run, so
//! `full − prefix` (counts and histograms, via
//! [`Histogram::subtracting`]) is precisely the post-shift regime.
//!
//! Self-checking — the run fails (nonzero exit) unless:
//!
//! 1. adaptive post-shift Q2 throughput ≥ 95 % of the best static
//!    threshold that still meets the high-priority p99 SLO;
//! 2. adaptive post-shift high-priority p99 is within the SLO;
//! 3. two same-seed adaptive runs produce byte-identical threshold
//!    trajectories;
//! 4. no run abandons a batch remainder on the no-progress retry path
//!    (`retry_abandoned_high == 0`).
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin fig_adaptive [-- --check]
//! ```
//!
//! `--check` (alias `--quick`) shrinks the run for CI.

use std::process::ExitCode;

use preempt_bench::{bench_tpcc_scale, bench_tpch_scale, Table};
use preemptdb::sched::{
    run, ControllerConfig, DriverConfig, Histogram, Policy, RobustnessConfig, RunReport, Runtime,
};
use preemptdb::workloads::{kinds, setup_mixed, LoadShift, MixedWorkload};
use preemptdb::SimConfig;

/// The load-shift scenario. High-priority demand is capped per arrival
/// tick: `pre_cap` requests/tick before `shift_ms`, `post_cap` after.
#[derive(Clone, Copy)]
struct Shift {
    workers: usize,
    duration_ms: u64,
    shift_ms: u64,
    /// Convergence allowance after the shift: the controller needs a few
    /// evaluation windows to climb out of the light-phase threshold, so
    /// the steady-state comparison starts at `shift_ms + settle_ms`.
    /// (Statics are stationary; measuring them over the same window
    /// keeps the comparison fair.)
    settle_ms: u64,
    arrival_us: u64,
    high_queue: usize,
    pre_cap: u32,
    post_cap: u32,
    seed: u64,
}

impl Shift {
    fn quick() -> Shift {
        Shift {
            workers: 8,
            duration_ms: 165,
            shift_ms: 60,
            settle_ms: 45,
            arrival_us: 1_000,
            high_queue: 8,
            pre_cap: 2,
            post_cap: u32::MAX,
            seed: 42,
        }
    }

    fn full() -> Shift {
        Shift {
            duration_ms: 285,
            shift_ms: 120,
            ..Shift::quick()
        }
    }

    fn batch_size(&self) -> usize {
        self.workers * self.high_queue
    }

    /// Start of the measured steady-state regime, ms.
    fn measure_from_ms(&self) -> u64 {
        self.shift_ms + self.settle_ms
    }
}

/// One deterministic simulated run under `policy`, truncated at
/// `duration_ms`. The database is rebuilt per run so every run replays
/// the same virtual-time execution from the same initial state.
fn run_shifted(policy: Policy, sc: &Shift, duration_ms: u64) -> RunReport {
    let sim = SimConfig::default();
    let (_engine, tpcc, tpch) = setup_mixed(
        sc.workers as u64,
        Some(bench_tpcc_scale(sc.workers as u64)),
        Some(bench_tpch_scale()),
        sc.seed,
    );
    let cfg = DriverConfig {
        policy,
        n_workers: sc.workers,
        shards: 1,
        queue_caps: vec![1, sc.high_queue],
        batch_size: sc.batch_size(),
        arrival_interval: sim.us_to_cycles(sc.arrival_us),
        duration: sim.ms_to_cycles(duration_ms),
        always_interrupt: false,
        // Give the dispatch loop enough no-progress retry budget that a
        // full-queue tick always ends on the paper's abandon-at-next-
        // arrival path, never the emergency give-up path — the checks
        // below assert `retry_abandoned_high == 0` on exactly that basis
        // (one tick is ~100 retry pauses, so 1000 rounds cannot run out).
        robustness: RobustnessConfig {
            max_full_retries: 1_000,
            ..Default::default()
        },
        recovery: Default::default(),
        metrics: None,
        trace: None,
        prov: None,
    };
    let factory = LoadShift::new(
        MixedWorkload::new(tpcc, tpch, sc.seed),
        sim.ms_to_cycles(sc.shift_ms),
        sc.pre_cap,
        sc.post_cap,
    );
    run(Runtime::Simulated(sim), cfg, Box::new(factory))
}

/// Post-shift regime metrics extracted by prefix subtraction.
struct PostShift {
    q2: u64,
    high: u64,
    p99_us: f64,
}

fn high_latency(r: &RunReport) -> Histogram {
    let mut h = Histogram::new();
    for kind in [kinds::NEW_ORDER, kinds::PAYMENT] {
        if let Some(m) = r.metrics.kind(kind) {
            h.merge(&m.latency);
        }
    }
    h
}

fn post_shift(pre: &RunReport, full: &RunReport, sim: &SimConfig) -> PostShift {
    let q2 = full
        .completed(kinds::Q2)
        .saturating_sub(pre.completed(kinds::Q2));
    let high = high_latency(full).subtracting(&high_latency(pre));
    PostShift {
        q2,
        high: high.count(),
        p99_us: sim.cycles_to_us(high.percentile(99.0)),
    }
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check" || a == "--quick");
    let sc = if check { Shift::quick() } else { Shift::full() };
    let sim = SimConfig::default();
    // floor_decay 1.0: never re-probe below a threshold that violated.
    // One probe window below the analytics latency cliff costs ~5 ms of
    // millisecond tails — several percent of this short run's samples —
    // so any nonzero re-probe rate blows a p99 SLO here. The crate
    // default (0.98) suits long-running services, where an occasional
    // probe window is amortized over minutes.
    let ctl = ControllerConfig {
        floor_decay: 1.0,
        ..ControllerConfig::default_2_4ghz()
    };
    let bound_us = sim.cycles_to_us(ctl.high_p99_bound);

    eprintln!(
        "load shift at {} ms: high-priority cap {}/tick -> {}; SLO p99 <= {:.0} us",
        sc.shift_ms,
        sc.pre_cap,
        sc.batch_size(),
        bound_us
    );

    let mut table = Table::new(
        format!(
            "Adaptive L_max vs static sweep (steady state {}..{} ms, shift at {} ms)",
            sc.measure_from_ms(),
            sc.duration_ms,
            sc.shift_ms
        ),
        &["policy", "post q2", "post high", "post p99 us", "slo", "final L_max"],
    );

    let mut failures: Vec<String> = Vec::new();
    let mut best_static_q2: Option<u64> = None;

    for threshold in [0.1, 0.25, 0.5, 1.0] {
        let policy = Policy::Preemptive {
            starvation_threshold: threshold,
        };
        let pre = run_shifted(policy, &sc, sc.measure_from_ms());
        let full = run_shifted(policy, &sc, sc.duration_ms);
        if full.scheduler.retry_abandoned_high != 0 {
            failures.push(format!(
                "static L_max={threshold}: abandoned {} high requests on the retry path",
                full.scheduler.retry_abandoned_high
            ));
        }
        let post = post_shift(&pre, &full, &sim);
        let ok = post.p99_us <= bound_us;
        if ok {
            best_static_q2 = Some(best_static_q2.unwrap_or(0).max(post.q2));
        }
        table.row(vec![
            format!("static L_max={threshold}"),
            post.q2.to_string(),
            post.high.to_string(),
            format!("{:.0}", post.p99_us),
            if ok { "meets" } else { "violates" }.into(),
            format!("{threshold:.3}"),
        ]);
    }

    let adaptive = Policy::PreemptiveAdaptive { controller: ctl };
    let pre = run_shifted(adaptive, &sc, sc.measure_from_ms());
    let full = run_shifted(adaptive, &sc, sc.duration_ms);
    let rerun = run_shifted(adaptive, &sc, sc.duration_ms);
    let post = post_shift(&pre, &full, &sim);

    let report = full
        .controller
        .as_ref()
        .expect("adaptive run must produce a controller report");
    let report2 = rerun
        .controller
        .as_ref()
        .expect("adaptive rerun must produce a controller report");

    let adaptive_ok = post.p99_us <= bound_us;
    table.row(vec![
        "adaptive".into(),
        post.q2.to_string(),
        post.high.to_string(),
        format!("{:.0}", post.p99_us),
        if adaptive_ok { "meets" } else { "violates" }.into(),
        format!("{:.3}", report.final_threshold),
    ]);
    table.print();

    println!(
        "controller: {} evaluations, final L_max = {:.3}",
        report.trajectory.len(),
        report.final_threshold
    );
    if std::env::var_os("FIG_ADAPTIVE_TRAJECTORY").is_some() {
        eprint!("{}", report.trajectory_text());
    }

    // 1. Competitive with the best SLO-compliant static threshold.
    match best_static_q2 {
        Some(best) if best > 0 => {
            let floor = (best as f64 * 0.95).ceil() as u64;
            if post.q2 < floor {
                failures.push(format!(
                    "adaptive post-shift Q2 {} < 95% of best compliant static ({best})",
                    post.q2
                ));
            } else {
                println!(
                    "adaptive post-shift Q2 {} >= 95% of best compliant static ({best})",
                    post.q2
                );
            }
        }
        _ => failures.push("no static threshold met the p99 SLO post-shift".into()),
    }

    // 2. SLO compliance.
    if !adaptive_ok {
        failures.push(format!(
            "adaptive post-shift p99 {:.0} us exceeds the {bound_us:.0} us SLO",
            post.p99_us
        ));
    }

    // 3. Determinism: same seed, byte-identical threshold trajectory.
    if report.trajectory_text() != report2.trajectory_text() {
        failures.push("same-seed adaptive runs diverged in threshold trajectory".into());
    } else {
        println!(
            "determinism: two same-seed adaptive runs produced identical {}-window trajectories",
            report.trajectory.len()
        );
    }
    if report.trajectory.is_empty() {
        failures.push("controller never evaluated a window".into());
    }

    // 4. Clean runs: nothing abandoned on the no-progress retry path.
    for (label, r) in [("adaptive", &full), ("adaptive-rerun", &rerun)] {
        if r.scheduler.retry_abandoned_high != 0 {
            failures.push(format!(
                "{label}: abandoned {} high requests on the retry path",
                r.scheduler.retry_abandoned_high
            ));
        }
    }

    if failures.is_empty() {
        println!("fig_adaptive: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fig_adaptive FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
