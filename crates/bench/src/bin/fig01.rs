//! Regenerates Figure 1 (right): scheduling-latency distribution of
//! high-priority transactions under Wait / Yield / PreemptDB.
//!
//! `--full` for a longer, closer-to-paper run.

use preempt_bench::{fig01, Scenario};

fn main() {
    let sc = if std::env::args().any(|a| a == "--full") {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    eprintln!("running fig01 with {sc:?} ...");
    fig01(&sc).print();
}
