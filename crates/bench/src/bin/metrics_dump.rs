//! Renders a metrics-registry snapshot of a seeded run as tables, and
//! (with `--check`) gates the observability plane in CI:
//!
//! 1. a seeded simulated run under fault injection must satisfy
//!    [`cross_check_registry`] — every legacy counter equals its
//!    registry series, per-kind histograms bit-for-bit included;
//! 2. the adaptive controller must produce a byte-identical threshold
//!    trajectory whether it reads an explicitly supplied registry or
//!    the scheduler's private fallback — one sensor plane, no drift;
//! 3. a real-thread run serving `GET /metrics` must yield a parseable
//!    Prometheus exposition whose histograms are internally consistent
//!    and which carries the delivery, starvation, degradation, fault,
//!    and SLO burn-rate series.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin metrics_dump [-- --check]
//! ```

use preempt_faults::FaultPlan;
use preempt_bench::Table;
use preemptdb::metrics::{
    self, Counter, FixedHist, MetricsConfig, MetricsRegistry, MetricsSnapshot, SloSpec,
};
use preemptdb::sched::{
    clock, cross_check_registry, run, DriverConfig, Policy, Request, RunReport, Runtime,
    WorkOutcome, WorkloadFactory,
};
use preemptdb::SimConfig;

/// Long low-priority "scans" and short high-priority "points" — the
/// runner-test synthetic workload, deterministic under the simulator.
struct Synthetic;
impl WorkloadFactory for Synthetic {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("scan", 0, now, || {
            for _ in 0..5_000 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

fn sim_cfg(policy: Policy, registry: Option<MetricsRegistry>) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: 4,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 16,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: 120_000_000,       // 50 ms
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: registry,
        prov: None,
    }
}

fn sim_registry() -> MetricsRegistry {
    MetricsRegistry::new(MetricsConfig {
        slos: vec![SloSpec {
            kind: "point",
            latency_bound_cycles: 240_000, // 100 µs at the sim's 2.4 GHz
            target_ppm: 10_000,
        }],
        ..MetricsConfig::default()
    })
}

fn faulty_sim() -> SimConfig {
    SimConfig {
        faults: Some(FaultPlan::lossy(7, 50_000, 5_000)),
        ..SimConfig::default()
    }
}

fn dump(snap: &MetricsSnapshot) {
    let mut counters = Table::new("counters", &["series", "total"]);
    for c in Counter::ALL {
        counters.row(vec![c.name().to_string(), snap.counter(c).to_string()]);
    }
    counters.print();

    let mut kinds = Table::new(
        "transactions by kind",
        &["kind", "completed", "aborted", "failed", "p50 cyc", "p99 cyc", "max cyc"],
    );
    for k in &snap.kinds {
        kinds.row(vec![
            k.name.clone(),
            k.completed.to_string(),
            k.deadline_aborted.to_string(),
            k.failed.to_string(),
            k.latency.percentile(50.0).to_string(),
            k.latency.percentile(99.0).to_string(),
            k.latency.max().to_string(),
        ]);
    }
    kinds.print();

    let mut hists = Table::new(
        "fixed histograms",
        &["series", "count", "p50", "p99", "max"],
    );
    for (h, s) in [
        (FixedHist::DeliveryLatencyCycles, &snap.delivery_latency),
        (FixedHist::LatchWaitCycles, &snap.latch_wait),
    ] {
        hists.row(vec![
            h.name().to_string(),
            s.count().to_string(),
            s.percentile(50.0).to_string(),
            s.percentile(99.0).to_string(),
            s.max().to_string(),
        ]);
    }
    hists.print();

    if !snap.gauges.is_empty() {
        let mut gauges = Table::new("gauges", &["series", "value"]);
        for (name, v) in &snap.gauges {
            gauges.row(vec![name.to_string(), format!("{v:.4}")]);
        }
        gauges.print();
    }
}

fn check_sim_cross_plane() -> RunReport {
    let registry = sim_registry();
    let report = run(
        Runtime::Simulated(faulty_sim()),
        sim_cfg(Policy::preemptdb(), Some(registry)),
        Box::new(Synthetic),
    );
    cross_check_registry(&report).expect("legacy accounting == registry snapshot");
    let snap = report.metrics_snapshot.as_ref().expect("snapshot collected");
    assert!(snap.counter(Counter::UintrDelivered) > 0, "interrupts delivered");
    assert!(snap.counter(Counter::FaultsInjected) > 0, "fault plan left a mark");
    assert!(
        snap.counter(Counter::UintrSent) >= snap.counter(Counter::UintrDelivered),
        "sends bound deliveries"
    );
    println!("sim cross-plane check: ok ({} series compared)", Counter::ALL.len());
    report
}

fn check_adaptive_identity() {
    let explicit = run(
        Runtime::Simulated(SimConfig::default()),
        sim_cfg(Policy::preemptdb_adaptive(), Some(sim_registry())),
        Box::new(Synthetic),
    );
    let fallback = run(
        Runtime::Simulated(SimConfig::default()),
        sim_cfg(Policy::preemptdb_adaptive(), None),
        Box::new(Synthetic),
    );
    let a = explicit.controller.expect("adaptive run has a controller");
    let b = fallback.controller.expect("adaptive run has a controller");
    assert!(!a.trajectory_text().is_empty(), "controller evaluated windows");
    assert_eq!(
        a.trajectory_text(),
        b.trajectory_text(),
        "explicit and fallback registries must drive identical trajectories"
    );
    println!(
        "adaptive sensor-plane check: ok ({} windows, byte-identical)",
        a.trajectory_text().lines().count()
    );
}

fn check_threaded_scrape() {
    let hz = clock::freq_hz();
    let registry = MetricsRegistry::new(MetricsConfig {
        serve: true,
        slos: vec![SloSpec {
            kind: "point",
            latency_bound_cycles: hz / 10_000,
            target_ppm: 10_000,
        }],
        sample_interval_ms: 10,
        ..MetricsConfig::default()
    });
    let mut cfg = sim_cfg(Policy::preemptdb(), Some(registry.clone()));
    cfg.n_workers = 2;
    cfg.arrival_interval = hz / 1_000;
    cfg.duration = hz / 5; // 200 ms wall clock
    let worker = std::thread::spawn(move || run(Runtime::Threads, cfg, Box::new(Synthetic)));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let addr = loop {
        if let Some(a) = registry.bound_addr() {
            break a;
        }
        assert!(std::time::Instant::now() < deadline, "endpoint never bound");
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    // Scrape mid-run, giving the sampler a refresh interval first.
    std::thread::sleep(std::time::Duration::from_millis(60));
    let body = metrics::serve::scrape(addr, "/metrics").expect("scrape /metrics");
    let report = worker.join().expect("threaded run");

    let exp = metrics::parse_prometheus(&body).expect("scrape parses");
    metrics::validate_histograms(&exp).expect("histogram invariants hold");
    for series in [
        format!("{}_uintr_delivered_total", metrics::NAMESPACE),
        format!("{}_uintr_watchdog_resends_total", metrics::NAMESPACE),
        format!("{}_starvation_skips_total", metrics::NAMESPACE),
        format!("{}_delivery_degrades_total", metrics::NAMESPACE),
        format!("{}_faults_injected_total", metrics::NAMESPACE),
        format!("{}_uintr_delivery_latency_cycles_bucket", metrics::NAMESPACE),
    ] {
        assert!(
            exp.all(&series).next().is_some(),
            "required series {series} missing from scrape"
        );
    }
    assert!(
        exp.value(&format!("{}_slo_burn_rate", metrics::NAMESPACE), &[("kind", "point")])
            .is_some(),
        "SLO burn-rate gauge missing from scrape"
    );
    assert!(report.completed("point") > 0, "threaded run made progress");
    println!("threaded scrape check: ok ({} bytes of exposition)", body.len());
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let report = check_sim_cross_plane();
    if check {
        check_adaptive_identity();
        check_threaded_scrape();
        println!("metrics_dump --check: all gates passed");
        return;
    }
    let snap = report.metrics_snapshot.expect("run carried a registry");
    dump(&snap);
}
