//! Regenerates Figure 12: starvation-threshold sweep under overload
//! (high queue 100, 100×workers high-priority transactions per 1 ms).

use preempt_bench::{fig12, Scenario};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let thresholds: &[f64] = if full {
        &[0.0, 0.25, 0.5, 0.75, 1.0, 100.0]
    } else {
        &[0.0, 0.75, 100.0]
    };
    eprintln!("running fig12 with {sc:?} thresholds={thresholds:?} ...");
    fig12(&sc, thresholds).print();
}
