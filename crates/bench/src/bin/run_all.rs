//! Runs every experiment in sequence and emits one markdown report —
//! the data behind `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin run_all           # quick
//! cargo run --release -p preempt-bench --bin run_all -- --full # longer
//! ```

use preempt_bench::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    println!("# PreemptDB reproduction — experiment report\n");
    println!(
        "scenario: {} workers, {} ms virtual duration, {} us arrivals, \
         high queue {}\n",
        sc.workers, sc.duration_ms, sc.arrival_us, sc.high_queue
    );

    eprintln!("[1/8] uintr delivery latency ...");
    uintr_latency(if full { 5_000 } else { 1_000 }).print();

    eprintln!("[2/8] fig01 ...");
    fig01(&sc).print();

    eprintln!("[3/8] fig08 ...");
    fig08(&sc, if full { &[1, 2, 4, 8, 16] } else { &[4, 16] }).print();

    eprintln!("[4/8] fig09 ...");
    fig09(&sc, if full { &[1, 2, 4, 8, 16] } else { &[2, 8, 16] }).print();

    eprintln!("[5/8] fig10 ...");
    let (top, bottom) = fig10(&sc);
    top.print();
    bottom.print();

    eprintln!("[6/8] fig11 ...");
    fig11(
        &sc,
        if full {
            &[1, 10, 100, 1_000, 10_000, 100_000]
        } else {
            &[10, 1_000, 10_000, 100_000]
        },
    )
    .print();

    eprintln!("[7/8] fig12 ...");
    fig12(&sc, if full { &[0.0, 0.25, 0.5, 0.75, 1.0, 100.0] } else { &[0.0, 0.75, 100.0] })
        .print();

    eprintln!("[8/8] fig13 ...");
    fig13(
        &sc,
        if full {
            &[50, 158, 500, 1_580, 5_000, 15_800, 50_000]
        } else {
            &[50, 500, 5_000, 50_000]
        },
    )
    .print();

    eprintln!("done.");
}
