//! Regenerates Figure 11: Cooperative's yield-interval sensitivity vs
//! the handcrafted variant and PreemptDB.

use preempt_bench::{fig11, Scenario};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let intervals: &[u64] = if full {
        &[1, 10, 100, 1_000, 10_000, 100_000]
    } else {
        &[10, 1_000, 10_000, 100_000]
    };
    eprintln!("running fig11 with {sc:?} intervals={intervals:?} ...");
    fig11(&sc, intervals).print();
}
