//! Ablation: how sensitive are PreemptDB's results to the emulated
//! user-interrupt delivery latency? (DESIGN.md §5.1 — the fidelity
//! argument for the software substitution of hardware UINTR.)

use preempt_bench::{ablation_delivery, Scenario};

fn main() {
    let sc = if std::env::args().any(|a| a == "--full") {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let sweep = [0.1, 0.5, 2.0, 10.0, 50.0, 200.0];
    eprintln!("running delivery-latency ablation with {sc:?} ...");
    ablation_delivery(&sc, &sweep).print();
    println!(
        "expected: NewOrder latency tracks the delivery latency only once it\n\
         dominates the transaction scale (>=10us); below that the mechanism's\n\
         exact delivery cost is immaterial — hardware UINTR (<1us) and this\n\
         emulation live on the flat part of the curve."
    );
}
