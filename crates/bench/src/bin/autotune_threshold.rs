//! Automatic starvation-threshold tuning (paper §6.4: "we leave the
//! automatic tuning of this threshold for future work").
//!
//! Given a target share of CPU the operator wants preserved for
//! low-priority analytics under overload, this tool searches `L_max` by
//! bisection over deterministic simulator runs: each probe replays the
//! Figure 12 overload scenario and measures the achieved Q2 throughput
//! fraction (relative to a fully-protected run). Determinism makes the
//! objective monotone enough for bisection to converge in a handful of
//! probes.
//!
//! For comparison it then runs the same scenario once under the online
//! closed-loop controller ([`Policy::PreemptiveAdaptive`]): bisection
//! optimizes a Q2-share objective offline with perfect replay; the
//! controller chases a high-priority p99 SLO online with no replay at
//! all. Reporting both shows where the two objectives land.
//!
//! ```sh
//! cargo run --release -p preempt-bench --bin autotune_threshold -- [q2-share]
//! ```

use preempt_bench::{bench_tpcc_scale, bench_tpch_scale, Scenario, Table};
use preemptdb::sched::{run, DriverConfig, Policy, RunReport, Runtime};
use preemptdb::workloads::{kinds, setup_mixed, MixedWorkload};
use preemptdb::SimConfig;

fn run_policy(policy: Policy, sc: &Scenario) -> RunReport {
    let sim = SimConfig::default();
    let (_e, tpcc, tpch) = setup_mixed(
        sc.workers as u64,
        Some(bench_tpcc_scale(sc.workers as u64)),
        Some(bench_tpch_scale()),
        sc.seed,
    );
    let cfg = DriverConfig {
        policy,
        n_workers: sc.workers,
        shards: 1,
        queue_caps: vec![1, 100],
        batch_size: 100 * sc.workers,
        arrival_interval: sim.us_to_cycles(sc.arrival_us),
        duration: sim.ms_to_cycles(sc.duration_ms),
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    };
    run(
        Runtime::Simulated(sim),
        cfg,
        Box::new(MixedWorkload::new(tpcc, tpch, sc.seed)),
    )
}

fn probe(threshold: f64, sc: &Scenario) -> (f64, f64) {
    let r = run_policy(
        Policy::Preemptive {
            starvation_threshold: threshold,
        },
        sc,
    );
    (
        r.tps(kinds::Q2),
        r.tps(kinds::NEW_ORDER) + r.tps(kinds::PAYMENT),
    )
}

fn main() {
    let target_share: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.5);
    let sc = Scenario {
        duration_ms: 100,
        ..Scenario::quick()
    };
    eprintln!(
        "tuning L_max for a >= {:.0}% Q2 share under the Figure 12 overload ...",
        target_share * 100.0
    );

    // Reference: fully protected run (threshold 0) ≈ max Q2 throughput.
    let (q2_max, _) = probe(0.0, &sc);
    let target = q2_max * target_share;

    let mut table = Table::new(
        format!("Auto-tuning L_max (target Q2 >= {target:.0} tps)"),
        &["probe", "L_max", "q2 tps", "high tps", "verdict"],
    );

    // Bisect on threshold: higher L_max → more high-priority CPU → less
    // Q2. Find the largest threshold still meeting the Q2 target.
    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    let mut best = 0.0;
    for i in 0..8 {
        let mid = (lo + hi) / 2.0;
        let (q2, high) = probe(mid, &sc);
        let ok = q2 >= target;
        table.row(vec![
            (i + 1).to_string(),
            format!("{mid:.3}"),
            format!("{q2:.0}"),
            format!("{high:.0}"),
            if ok { "meets target" } else { "too starved" }.into(),
        ]);
        if ok {
            best = mid;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    table.print();
    println!(
        "recommended starvation threshold: L_max = {best:.3} \
         (largest probed value meeting the Q2 target; higher values favor \
         high-priority latency)"
    );

    // The online alternative: no replay, no bisection — the closed-loop
    // controller converges on a threshold from live sensors.
    let r = run_policy(Policy::preemptdb_adaptive(), &sc);
    let report = r
        .controller
        .as_ref()
        .expect("adaptive run must produce a controller report");
    println!(
        "online controller (p99 objective): converged to L_max = {:.3} after {} windows; \
         q2 {:.0} tps, high {:.0} tps",
        report.final_threshold,
        report.trajectory.len(),
        r.tps(kinds::Q2),
        r.tps(kinds::NEW_ORDER) + r.tps(kinds::PAYMENT),
    );
    println!(
        "note: bisection optimizes an offline Q2-share target; the controller \
         chases a high-priority p99 SLO online — the two land on the same \
         threshold only when the SLO and the share target agree"
    );
}
