//! Regenerates Figure 8: standard TPC-C throughput with and without the
//! user-interrupt machinery (expected: a few percent overhead at most).

use preempt_bench::{fig08, Scenario};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    let workers: &[usize] = if full { &[1, 2, 4, 8, 16] } else { &[4, 16] };
    eprintln!("running fig08 with {sc:?} workers={workers:?} ...");
    fig08(&sc, workers).print();
}
