//! One experiment per evaluation artifact (paper §6). See DESIGN.md §4
//! for the per-experiment index and expected shapes.

use preemptdb::sched::{run, DriverConfig, Policy, Runtime};
use preemptdb::uintr::{cycles, latency};
use preemptdb::workloads::{kinds, MixedWorkload, TpccWorkload};
use preemptdb::SimConfig;

use crate::table::{tps, us, Table};
use crate::{competing_policies, load_mixed, run_mixed, Scenario};

/// Figure 1 (right): scheduling-latency distribution of high-priority
/// transactions under Wait / Yield(Cooperative) / PreemptDB.
pub fn fig01(sc: &Scenario) -> Table {
    let (tpcc, tpch) = load_mixed(sc.workers, sc.seed);
    let mut t = Table::new(
        "Figure 1 (right): scheduling latency of high-priority transactions",
        &["policy", "p50", "p90", "p99", "p99.9", "max-observed"],
    );
    for (name, policy) in competing_policies() {
        let r = run_mixed(policy, sc, tpcc.clone(), tpch.clone());
        let s = |p: f64| {
            let a = r.sched_latency_us(kinds::NEW_ORDER, p);
            let b = r.sched_latency_us(kinds::PAYMENT, p);
            us(a.max(b))
        };
        let max_us = r
            .metrics
            .kind(kinds::NEW_ORDER)
            .map(|m| m.sched_latency.max() as f64 * 1e6 / r.freq_hz as f64)
            .unwrap_or(0.0);
        t.row(vec![
            name.into(),
            s(50.0),
            s(90.0),
            s(99.0),
            s(99.9),
            us(max_us),
        ]);
    }
    t
}

/// §6.1 measurement: user-interrupt delivery latency between two POSIX
/// threads ("consistently lower than 1 µs" on UINTR hardware), compared
/// with the kernel-mediated signal path. Runs on real threads.
pub fn uintr_latency(samples: usize) -> Table {
    let mut t = Table::new(
        "§6.1: delivery latency, user-level vs kernel-mediated (real threads)",
        &["mechanism", "median", "p90", "p99"],
    );
    let to_us = |c: u64| format!("{:.2}us", cycles::cycles_to_ns(c) as f64 / 1000.0);

    let mut u = latency::uintr_latency_samples(samples);
    t.row(vec![
        "uintr (emulated, flag+poll)".into(),
        to_us(latency::median(&mut u)),
        to_us(latency::percentile(&mut u, 0.90)),
        to_us(latency::percentile(&mut u, 0.99)),
    ]);
    let mut s = latency::signal_latency_samples(samples);
    t.row(vec![
        "signal (pthread_kill)".into(),
        to_us(latency::median(&mut s)),
        to_us(latency::percentile(&mut s, 0.90)),
        to_us(latency::percentile(&mut s, 0.99)),
    ]);
    t
}

/// Figure 8: standard TPC-C throughput with and without the
/// user-interrupt machinery (paper: ~1.7 % slowdown).
///
/// "Without": Wait policy, no interrupts ever. "With": the preemptive
/// policy with `always_interrupt` — the scheduling thread interrupts
/// every worker every tick with no high-priority work behind it, so every
/// delivery is pure overhead (switch in, find nothing, switch back).
pub fn fig08(sc: &Scenario, worker_counts: &[usize]) -> Table {
    let sim = SimConfig::default();
    let mut t = Table::new(
        "Figure 8: standard TPC-C throughput, uintr machinery on vs off",
        &["workers", "off (tps)", "on (tps)", "overhead", "interrupts"],
    );
    for &workers in worker_counts {
        let (tpcc, _tpch) = load_mixed(workers, sc.seed);
        let mut results = Vec::new();
        for on in [false, true] {
            let cfg = DriverConfig {
                policy: if on {
                    Policy::preemptdb()
                } else {
                    Policy::Wait
                },
                n_workers: workers,
                shards: 1,
                // Deep low queue keeps workers saturated with OLTP (the
                // overhead is invisible if workers idle between arrivals).
                queue_caps: vec![64, 4],
                batch_size: 0,
                arrival_interval: sim.us_to_cycles(sc.arrival_us),
                duration: sim.ms_to_cycles(sc.duration_ms),
                always_interrupt: on,
                robustness: Default::default(),
                recovery: Default::default(),
                trace: None,
                metrics: None,
                prov: None,
            };
            let factory = TpccWorkload::new(tpcc.clone(), sc.seed);
            results.push(run(Runtime::Simulated(sim), cfg, Box::new(factory)));
        }
        let (off, on) = (&results[0], &results[1]);
        let overhead = 1.0 - on.total_tps() / off.total_tps();
        t.row(vec![
            workers.to_string(),
            tps(off.total_tps()),
            tps(on.total_tps()),
            format!("{:+.2}%", overhead * 100.0),
            on.scheduler.interrupts_sent.to_string(),
        ]);
    }
    t
}

/// Figure 9: scalability — throughput of the three transaction types in
/// the mix under each policy across core counts.
pub fn fig09(sc: &Scenario, worker_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 9: mixed-workload throughput vs workers",
        &["workers", "policy", "neworder", "payment", "q2"],
    );
    for &workers in worker_counts {
        let (tpcc, tpch) = load_mixed(workers, sc.seed);
        for (name, policy) in competing_policies() {
            let sc_n = Scenario { workers, ..*sc };
            let r = run_mixed(policy, &sc_n, tpcc.clone(), tpch.clone());
            t.row(vec![
                workers.to_string(),
                name.into(),
                tps(r.tps(kinds::NEW_ORDER)),
                tps(r.tps(kinds::PAYMENT)),
                tps(r.tps(kinds::Q2)),
            ]);
        }
    }
    t
}

/// One row of the sharded-plane scaling sweep (`fig09_sharded`).
pub struct ShardScalePoint {
    pub workers: usize,
    /// Shard count used for the sharded configuration at this size.
    pub shards: usize,
    pub baseline_tps: f64,
    pub sharded_tps: f64,
}

impl ShardScalePoint {
    pub fn speedup(&self) -> f64 {
        if self.baseline_tps > 0.0 {
            self.sharded_tps / self.baseline_tps
        } else {
            0.0
        }
    }
}

/// Virtual cycles burned by one point transaction in the scaling sweep.
/// Short enough that the dispatch plane, not the workers, is the
/// binding resource once four or more workers drain a single queue:
/// each push charges `DISPATCH_PUSH_COST` (250 cycles) to the
/// scheduling core's virtual clock, so one scheduler saturates near
/// 2.4 GHz / 250 ≈ 9.6 M dispatches/s while each worker consumes
/// ~2.8 M/s — the single global queue stops scaling at ~4 workers and
/// the per-shard planes keep going.
const POINT_BODY_CYCLES: u64 = 700;

/// Figure 9 (sharded-plane extension, ISSUE 8): throughput of the
/// sharded scheduler plane (two workers per shard, one dispatch core
/// per shard) against the single-global-queue baseline across worker
/// counts, on a dispatch-bound point-transaction stream. The shard
/// count grows with the machine (`workers / 2`, floored at one), so a
/// 1- or 2-worker sweep point degenerates to the baseline exactly.
pub fn fig09_sharded(duration_ms: u64, worker_counts: &[usize]) -> (Table, Vec<ShardScalePoint>) {
    use preemptdb::sched::{Request, WorkOutcome, WorkloadFactory};

    /// A stateless stream of minimal low-priority "point" transactions;
    /// splitting it hands every shard an identical independent stream.
    struct PointStream;
    impl WorkloadFactory for PointStream {
        fn make_low(&mut self, now: u64) -> Option<Request> {
            Some(Request::new("point", 0, now, || {
                preemptdb::context::runtime::preempt_point(POINT_BODY_CYCLES);
                WorkOutcome::default()
            }))
        }
        fn make_high(&mut self, _now: u64) -> Option<Request> {
            None
        }
        fn try_split(&mut self, shards: usize) -> Option<Vec<Box<dyn WorkloadFactory>>> {
            Some(
                (0..shards)
                    .map(|_| Box::new(PointStream) as Box<dyn WorkloadFactory>)
                    .collect(),
            )
        }
    }

    let run_one = |workers: usize, shards: usize| {
        let sim = SimConfig::default();
        let cfg = DriverConfig {
            policy: Policy::preemptdb(),
            n_workers: workers,
            shards,
            // Deep low queues: the refill cadence (10 us) must never be
            // what limits a worker, only dispatch-plane capacity.
            queue_caps: vec![32, 4],
            batch_size: 0,
            arrival_interval: sim.us_to_cycles(10),
            duration: sim.ms_to_cycles(duration_ms),
            always_interrupt: false,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        run(Runtime::Simulated(sim), cfg, Box::new(PointStream))
    };

    let mut t = Table::new(
        "Figure 9 (sharded plane): dispatch-bound throughput vs workers",
        &["workers", "shards", "single-queue", "sharded", "speedup", "steals"],
    );
    let mut points = Vec::new();
    for &workers in worker_counts {
        let shards = (workers / 2).max(1);
        let baseline = run_one(workers, 1);
        let sharded = run_one(workers, shards);
        let p = ShardScalePoint {
            workers,
            shards,
            baseline_tps: baseline.total_tps(),
            sharded_tps: sharded.total_tps(),
        };
        t.row(vec![
            workers.to_string(),
            shards.to_string(),
            tps(p.baseline_tps),
            tps(p.sharded_tps),
            format!("{:.2}x", p.speedup()),
            sharded.workers.steals.to_string(),
        ]);
        points.push(p);
    }
    (t, points)
}

/// Figure 10: end-to-end latency percentiles of NewOrder (top) and Q2
/// (bottom) under the three policies.
pub fn fig10(sc: &Scenario) -> (Table, Table) {
    let (tpcc, tpch) = load_mixed(sc.workers, sc.seed);
    let mut top = Table::new(
        "Figure 10 (top): NewOrder end-to-end latency",
        &["policy", "p50", "p90", "p99", "p99.9"],
    );
    let mut bottom = Table::new(
        "Figure 10 (bottom): Q2 end-to-end latency",
        &["policy", "p50", "p90", "p99", "p99.9"],
    );
    for (name, policy) in competing_policies() {
        let r = run_mixed(policy, sc, tpcc.clone(), tpch.clone());
        top.row(vec![
            name.into(),
            us(r.latency_us(kinds::NEW_ORDER, 50.0)),
            us(r.latency_us(kinds::NEW_ORDER, 90.0)),
            us(r.latency_us(kinds::NEW_ORDER, 99.0)),
            us(r.latency_us(kinds::NEW_ORDER, 99.9)),
        ]);
        bottom.row(vec![
            name.into(),
            us(r.latency_us(kinds::Q2, 50.0)),
            us(r.latency_us(kinds::Q2, 90.0)),
            us(r.latency_us(kinds::Q2, 99.0)),
            us(r.latency_us(kinds::Q2, 99.9)),
        ]);
    }
    (top, bottom)
}

/// Figure 11: yield-interval sensitivity of Cooperative, vs the
/// handcrafted variant and PreemptDB.
pub fn fig11(sc: &Scenario, intervals: &[u64]) -> Table {
    let (tpcc, tpch) = load_mixed(sc.workers, sc.seed);
    let mut t = Table::new(
        "Figure 11: yield interval vs throughput and latency",
        &[
            "variant",
            "neworder p50",
            "neworder p99",
            "neworder tps",
            "q2 p99",
            "q2 tps",
        ],
    );
    let mut add = |label: String, policy: Policy| {
        let r = run_mixed(policy, sc, tpcc.clone(), tpch.clone());
        t.row(vec![
            label,
            us(r.latency_us(kinds::NEW_ORDER, 50.0)),
            us(r.latency_us(kinds::NEW_ORDER, 99.0)),
            tps(r.tps(kinds::NEW_ORDER)),
            us(r.latency_us(kinds::Q2, 99.0)),
            tps(r.tps(kinds::Q2)),
        ]);
    };
    for &iv in intervals {
        add(
            format!("Cooperative({iv})"),
            Policy::Cooperative { yield_interval: iv },
        );
    }
    // The handcrafted variant is tuned per workload (that is the paper's
    // point): our Q2 evaluates ~20k nested blocks, so checking every 200
    // blocks yields every ~45 µs of Q2 work — the "right" spot a DBMS
    // developer would have to find by profiling.
    add(
        "Coop-Handcrafted(200)".into(),
        Policy::CooperativeHandcrafted {
            block_interval: 200,
        },
    );
    add("PreemptDB".into(), Policy::preemptdb());
    t
}

/// Figure 12: starvation-threshold sweep under overload (high queue 100,
/// 1600 high-priority transactions per 1 ms across 16 workers).
pub fn fig12(sc: &Scenario, thresholds: &[f64]) -> Table {
    let overload = Scenario {
        high_queue: 100,
        batch: Some(100 * sc.workers),
        ..*sc
    };
    let (tpcc, tpch) = load_mixed(overload.workers, overload.seed);
    let mut t = Table::new(
        "Figure 12: starvation threshold under overload",
        &[
            "policy",
            "neworder p50",
            "neworder p99",
            "neworder tps",
            "q2 p99",
            "q2 tps",
            "skipped",
        ],
    );
    let mut add = |label: String, policy: Policy| {
        let r = run_mixed(policy, &overload, tpcc.clone(), tpch.clone());
        t.row(vec![
            label,
            us(r.latency_us(kinds::NEW_ORDER, 50.0)),
            us(r.latency_us(kinds::NEW_ORDER, 99.0)),
            tps(r.tps(kinds::NEW_ORDER)),
            us(r.latency_us(kinds::Q2, 99.0)),
            tps(r.tps(kinds::Q2)),
            r.scheduler.skipped_starving.to_string(),
        ]);
    };
    add("Wait".into(), Policy::Wait);
    for &thr in thresholds {
        add(
            format!("PreemptDB(Lmax={thr})"),
            Policy::Preemptive {
                starvation_threshold: thr,
            },
        );
    }
    t
}

/// Figure 13: robustness across arrival intervals — geometric-mean
/// end-to-end latency of NewOrder and Q2.
pub fn fig13(sc: &Scenario, arrival_us: &[u64]) -> Table {
    let (tpcc, tpch) = load_mixed(sc.workers, sc.seed);
    let mut t = Table::new(
        "Figure 13: geomean latency vs arrival interval",
        &["arrival", "policy", "neworder geomean", "q2 geomean"],
    );
    for &a_us in arrival_us {
        for (name, policy) in competing_policies() {
            let sc_a = Scenario {
                arrival_us: a_us,
                ..*sc
            };
            let r = run_mixed(policy, &sc_a, tpcc.clone(), tpch.clone());
            t.row(vec![
                format!("{a_us}us"),
                name.into(),
                us(r.geomean_latency_us(kinds::NEW_ORDER)),
                us(r.geomean_latency_us(kinds::Q2)),
            ]);
        }
    }
    t
}

/// Ablation (DESIGN.md §5.1): sensitivity of PreemptDB's high-priority
/// latency to the emulated user-interrupt delivery latency. The paper's
/// hardware delivers in < 1 µs; the results should be insensitive for
/// any delivery latency well below the transaction scale (~10 µs) —
/// which is what makes the software emulation a faithful substitute.
pub fn ablation_delivery(sc: &Scenario, delivery_us: &[f64]) -> Table {
    let (tpcc, tpch) = crate::load_mixed(sc.workers, sc.seed);
    let mut t = Table::new(
        "Ablation: emulated uintr delivery latency vs NewOrder latency",
        &["delivery", "neworder p50", "neworder p99", "q2 p99"],
    );
    for &d_us in delivery_us {
        let sim = SimConfig {
            uintr_delivery_cycles: (d_us * 2_400.0) as u64,
            ..SimConfig::default()
        };
        let cfg = preemptdb::sched::DriverConfig {
            policy: Policy::preemptdb(),
            n_workers: sc.workers,
            shards: 1,
            queue_caps: vec![1, sc.high_queue],
            batch_size: sc.batch_size(),
            arrival_interval: sim.us_to_cycles(sc.arrival_us),
            duration: sim.ms_to_cycles(sc.duration_ms),
            always_interrupt: false,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        let factory = MixedWorkload::new(tpcc.clone(), tpch.clone(), sc.seed);
        let r = run(Runtime::Simulated(sim), cfg, Box::new(factory));
        t.row(vec![
            format!("{d_us}us"),
            us(r.latency_us(kinds::NEW_ORDER, 50.0)),
            us(r.latency_us(kinds::NEW_ORDER, 99.0)),
            us(r.latency_us(kinds::Q2, 99.0)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            workers: 2,
            duration_ms: 30,
            arrival_us: 1_000,
            high_queue: 4,
            batch: None,
            seed: 1,
        }
    }

    #[test]
    fn fig01_has_three_policies() {
        let t = fig01(&tiny_scenario());
        let md = t.to_markdown();
        assert!(md.contains("Wait") && md.contains("PreemptDB"));
    }

    #[test]
    fn fig10_produces_both_tables() {
        let (top, bottom) = fig10(&tiny_scenario());
        assert!(!top.is_empty() && !bottom.is_empty());
    }

    #[test]
    fn fig08_reports_overhead() {
        let t = fig08(&tiny_scenario(), &[2]);
        assert!(t.to_markdown().contains('%'));
    }
}
