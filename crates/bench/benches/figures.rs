//! `cargo bench` entry point that regenerates every figure of the
//! paper's evaluation at a reduced (bench-friendly) scale. For full
//! figure runs, use the dedicated binaries:
//! `cargo run --release -p preempt-bench --bin fig10 -- --full`, etc.
//!
//! This is a `harness = false` bench target: the experiments measure
//! virtual-time distributions themselves, so Criterion's statistics
//! machinery is not applicable.

use preempt_bench::*;

fn main() {
    // Respect `cargo bench -- <filter>`: run only matching figures.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_default();
    let wants = |name: &str| filter.is_empty() || name.contains(&filter);

    let sc = Scenario {
        duration_ms: 100,
        ..Scenario::quick()
    };

    println!("# figure regeneration (bench scale: {} ms virtual)\n", sc.duration_ms);

    if wants("uintr_latency") {
        eprintln!("uintr_latency ...");
        uintr_latency(500).print();
    }
    if wants("fig01") {
        eprintln!("fig01 ...");
        fig01(&sc).print();
    }
    if wants("fig08") {
        eprintln!("fig08 ...");
        fig08(&sc, &[4]).print();
    }
    if wants("fig09") {
        eprintln!("fig09 ...");
        fig09(&sc, &[4, 16]).print();
    }
    if wants("fig10") {
        eprintln!("fig10 ...");
        let (top, bottom) = fig10(&sc);
        top.print();
        bottom.print();
    }
    if wants("fig11") {
        eprintln!("fig11 ...");
        fig11(&sc, &[100, 10_000, 100_000]).print();
    }
    if wants("fig12") {
        eprintln!("fig12 ...");
        fig12(&sc, &[0.0, 0.75, 100.0]).print();
    }
    if wants("fig13") {
        eprintln!("fig13 ...");
        fig13(&sc, &[50, 1_000, 50_000]).print();
    }
}
