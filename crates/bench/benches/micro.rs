//! Criterion microbenchmarks for the mechanisms the paper's overhead
//! claims rest on: context switch cost (§4.2 "very lightweight"),
//! preemption-point cost, CLS access, queue operations, and the MVCC hot
//! paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use preemptdb::context::cls::ClsCell;
use preemptdb::context::nonpreempt::NonPreemptGuard;
use preemptdb::context::switch::{switch_to, Context};
use preemptdb::context::tcb;
use preemptdb::sched::{Request, RequestQueue, WorkOutcome};
use preemptdb::uintr::{UintrReceiver, UipiSender};
use preemptdb::{Engine, EngineConfig};

fn bench_context_switch(c: &mut Criterion) {
    // Round trip root -> context -> root (two raw switches).
    let root = tcb::root_ptr() as usize;
    let ctx = Context::with_default_stack("bench", move || loop {
        switch_to(unsafe { &*(root as *const tcb::Tcb) });
    })
    .unwrap();
    c.bench_function("context_switch_round_trip", |b| {
        b.iter(|| {
            ctx.resume();
        })
    });
    // The context parks suspended; dropping a suspended context is fine.
}

fn bench_preempt_point(c: &mut Criterion) {
    c.bench_function("preempt_point_no_hook", |b| {
        b.iter(|| preemptdb::context::runtime::preempt_point(black_box(100)))
    });
}

fn bench_uintr(c: &mut Criterion) {
    let mut rx = UintrReceiver::new();
    rx.register_handler(|_| {});
    let tx = UipiSender::new(rx.upid(), 0);
    c.bench_function("uintr_poll_empty", |b| b.iter(|| black_box(rx.poll())));
    c.bench_function("uintr_send_and_deliver", |b| {
        b.iter(|| {
            tx.send();
            rx.poll()
        })
    });
}

fn bench_cls(c: &mut Criterion) {
    static SLOT: ClsCell<u64> = ClsCell::new(|| 0);
    c.bench_function("cls_access", |b| b.iter(|| SLOT.with(|v| *v += 1)));
    c.bench_function("nonpreempt_region", |b| {
        b.iter(|| {
            let _g = NonPreemptGuard::enter();
            black_box(())
        })
    });
}

fn bench_queue(c: &mut Criterion) {
    let q = RequestQueue::new(1024);
    c.bench_function("queue_push_pop", |b| {
        b.iter(|| {
            q.push(Request::new("k", 1, 0, WorkOutcome::default))
                .ok();
            black_box(q.pop())
        })
    });
}

fn bench_mvcc(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig::default());
    let table = engine.create_table("bench");
    let mut tx = engine.begin_si();
    let oid = tx.insert(&table, &[0u8; 64]).unwrap();
    tx.commit().unwrap();

    c.bench_function("mvcc_point_read_txn", |b| {
        b.iter(|| {
            let mut tx = engine.begin_si();
            black_box(tx.read(&table, oid));
            tx.commit().unwrap()
        })
    });
    c.bench_function("mvcc_update_txn", |b| {
        let payload = [1u8; 64];
        b.iter(|| {
            let mut tx = engine.begin_si();
            tx.update(&table, oid, &payload).unwrap();
            tx.commit().unwrap()
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = preemptdb::sched::Histogram::new();
    let mut v = 1u64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v >> 40)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_context_switch, bench_preempt_point, bench_uintr, bench_cls, bench_queue, bench_mvcc, bench_histogram
}
criterion_main!(benches);
