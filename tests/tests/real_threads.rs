//! The real-thread runtime path with real workloads: everything the
//! simulator experiments exercise also works on plain OS threads (the
//! deployment mode of the embedded `Database`). Kept small — a 1-core CI
//! host timeshares all workers.

use preemptdb::sched::{clock, run, DriverConfig, Policy, Runtime};
use preemptdb::workloads::{kinds, setup_mixed, MixedWorkload, TpccScale, TpchScale};

fn thread_cfg(policy: Policy, duration_ms: u64) -> DriverConfig {
    let freq = clock::freq_hz();
    DriverConfig {
        policy,
        n_workers: 2,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: freq / 1_000, // 1 ms of real time
        duration: freq / 1_000 * duration_ms,
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    }
}

#[test]
fn mixed_workload_on_real_threads() {
    let (engine, tpcc, tpch) = setup_mixed(
        2,
        Some(TpccScale {
            warehouses: 2,
            districts_per_wh: 2,
            customers_per_district: 50,
            items: 200,
            preloaded_orders: 5,
        }),
        Some(TpchScale::tiny()),
        1,
    );
    let report = run(
        Runtime::Threads,
        thread_cfg(Policy::preemptdb(), 150),
        Box::new(MixedWorkload::new(tpcc, tpch, 2)),
    );
    assert!(report.completed(kinds::Q2) > 5, "q2: {}", report.completed(kinds::Q2));
    assert!(
        report.completed(kinds::NEW_ORDER) + report.completed(kinds::PAYMENT) > 20,
        "high-priority completions"
    );
    // Interrupts were sent and delivered on real threads.
    assert!(report.scheduler.interrupts_sent > 0);
    assert!(report.workers.uintr_delivered > 0);
    assert!(engine.stats().commits > 25);
    assert_eq!(engine.registry().active_count(), 0, "no leaked txns");
}

#[test]
fn wait_policy_on_real_threads() {
    let (_engine, tpcc, tpch) = setup_mixed(
        2,
        Some(TpccScale {
            warehouses: 2,
            districts_per_wh: 2,
            customers_per_district: 50,
            items: 200,
            preloaded_orders: 5,
        }),
        Some(TpchScale::tiny()),
        4,
    );
    let report = run(
        Runtime::Threads,
        thread_cfg(Policy::Wait, 100),
        Box::new(MixedWorkload::new(tpcc, tpch, 6)),
    );
    assert!(report.metrics.total_completed() > 20);
    assert_eq!(report.workers.preemptions, 0, "Wait never preempts");
    assert_eq!(report.scheduler.interrupts_sent, 0);
}
