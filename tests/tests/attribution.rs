//! Attribution-identity tests (ISSUE 10, satellite 3): the latency
//! provenance plane on the deterministic simulator.
//!
//! * per-request phase sums equal end-to-end latency — certified by a
//!   zero `window_mismatch` count and by the trace-side class totals
//!   matching the independently-fed registry phase histograms exactly;
//! * same-seed runs produce byte-identical attribution reports;
//! * the flight recorder fires exactly on SLO breach: an unreachable
//!   bound captures nothing, a zero bound captures every commit.

use preemptdb::metrics::{FixedHist, MetricsConfig, MetricsRegistry};
use preemptdb::prov::{Phase, ProvConfig};
use preemptdb::sched::{
    run, DriverConfig, Policy, Request, RobustnessConfig, RunReport, Runtime, WorkOutcome,
    WorkloadFactory,
};
use preemptdb::trace::{TraceConfig, TraceSession};
use preemptdb::SimConfig;

/// Long low-priority "scans" and short high-priority "points": scans sit
/// in preemption-point loops long enough that high batches preempt them,
/// so the preempted-out and handler phases are exercised, not just queue
/// and run.
struct Counted {
    scan_iters: u64,
}

impl WorkloadFactory for Counted {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let iters = self.scan_iters;
        Some(Request::new("scan", 0, now, move || {
            for _ in 0..iters {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, move || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

const N_WORKERS: usize = 4;

fn prov_cfg(policy: Policy, duration_ms: u64, prov: ProvConfig) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: duration_ms * 2_400_000,
        always_interrupt: false,
        robustness: RobustnessConfig::default(),
        recovery: Default::default(),
        trace: Some(TraceSession::new(TraceConfig::default())),
        metrics: Some(MetricsRegistry::new(MetricsConfig::default())),
        prov: Some(prov),
    }
}

fn run_attributed(cfg: DriverConfig) -> RunReport {
    run(
        Runtime::Simulated(SimConfig::default()),
        cfg,
        Box::new(Counted { scan_iters: 2_000 }),
    )
}

/// Phase sums equal end-to-end latency, cycle-exact on the simulator:
/// no span's window phases disagree with its begin→commit duration, and
/// the trace-side reconstruction matches the worker-fed registry phase
/// histograms (count and cycle sum) on every phase of both classes.
#[test]
fn phase_sums_equal_end_to_end_latency() {
    let r = run_attributed(prov_cfg(Policy::preemptdb(), 40, ProvConfig::default()));
    let t = r.trace.as_ref().expect("trace recorded");
    assert_eq!(t.dropped, 0, "a lossy trace cannot certify attribution");
    let attr = r.attribution.as_ref().expect("attribution reconstructed");

    // Per-request identity: every committed span's window phases sum
    // exactly to its begin→commit duration.
    assert_eq!(attr.window_mismatch, 0, "phase sums must equal span durations");
    assert_eq!(attr.unmatched, 0);
    assert_eq!(attr.incomplete, 0);
    assert!(attr.attributed > 0, "run must commit transactions");

    // Cross-plane identity: the reconstruction (trace rings only) and
    // the registry histograms (worker commit path only) are independent
    // measurement paths; they must agree exactly.
    let snap = r.metrics_snapshot.as_ref().expect("registry snapshot");
    for (c, cls) in attr.classes.iter().enumerate() {
        assert!(cls.completed > 0, "class {c} must complete work");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let reg = snap.fixed(FixedHist::phase(i, c == 1));
            assert_eq!(
                reg.count(),
                cls.completed,
                "class {c} phase {} count drifted between planes",
                phase.label()
            );
            assert_eq!(
                reg.sum,
                cls.phase_sums[i],
                "class {c} phase {} cycle sum drifted between planes",
                phase.label()
            );
        }
        // Simulator runs have no front door: e2e == scheduler latency.
        assert_eq!(cls.e2e, cls.latency, "admission must be zero in sim");
        assert_eq!(cls.latency.count, cls.completed);
    }

    // Preemption actually happened and was attributed: the low class
    // carries preempted-out cycles, the high class queue-waits.
    assert!(
        attr.classes[0].phase_sums[Phase::Preempted as usize] > 0,
        "scans must record preempted-out time under Preempt"
    );
    assert!(attr.classes[1].phase_sums[Phase::Queue as usize] > 0);
}

/// Same seed, same config: the attribution report is byte-identical.
#[test]
fn same_seed_attribution_is_byte_identical() {
    let a = run_attributed(prov_cfg(Policy::preemptdb(), 30, ProvConfig::default()));
    let b = run_attributed(prov_cfg(Policy::preemptdb(), 30, ProvConfig::default()));
    let (a, b) = (
        a.attribution.as_ref().expect("attribution"),
        b.attribution.as_ref().expect("attribution"),
    );
    assert!(a.attributed > 0);
    assert_eq!(a.canonical_text(), b.canonical_text());
    assert_eq!(a.to_json(), b.to_json());
}

/// Exemplar capture fires exactly on SLO breach: an unreachable bound
/// captures nothing; a zero bound (with recorder capacity to spare)
/// captures every committed request, each tagged with its class bound.
#[test]
fn exemplar_capture_fires_exactly_on_slo_breach() {
    let none = run_attributed(prov_cfg(Policy::preemptdb(), 30, ProvConfig::default()));
    assert!(
        none.exemplars.is_empty(),
        "nothing breaches an unreachable SLO"
    );
    assert_eq!(none.flight_missed, 0);

    let all = run_attributed(prov_cfg(
        Policy::preemptdb(),
        30,
        ProvConfig {
            slo_cycles: [0, 0],
            exemplars_per_worker: 4096,
        },
    ));
    let attr = all.attribution.as_ref().expect("attribution");
    assert_eq!(attr.ring_dropped, 0);
    assert_eq!(
        all.exemplars.len() as u64,
        attr.attributed,
        "every commit breaches a zero SLO and must be captured"
    );
    assert_eq!(all.flight_missed, 0, "commit-path captures never contend");
    for ex in &all.exemplars {
        assert!(ex.latency > ex.slo, "captured without breaching");
        assert_eq!(ex.slo, 0);
        assert_eq!(
            ex.phases.iter().sum::<u64>(),
            ex.latency,
            "an exemplar's phases must sum to its recorded latency"
        );
        assert!((ex.worker as usize) < N_WORKERS);
    }
    // Both classes breach a zero bound.
    for class in [0u8, 1u8] {
        assert!(
            all.exemplars.iter().any(|e| e.class == class),
            "class {class} missing from the exemplar set"
        );
    }
}
