//! Transactional-correctness invariants under preemptive scheduling: the
//! whole point of PreemptDB is that preempting optimistic readers is
//! *safe*. These tests run real mixed workloads with aggressive
//! preemption and then audit the database.

use preemptdb::mvcc::ControlFlow;
use preemptdb::sched::{run, DriverConfig, Policy, Runtime};
use preemptdb::workloads::tpcc::schema::*;
use preemptdb::workloads::{setup_mixed, MixedWorkload, TpccScale, TpchScale};
use preemptdb::SimConfig;

fn scales(warehouses: u64) -> (TpccScale, TpchScale) {
    (
        TpccScale {
            warehouses,
            districts_per_wh: 3,
            customers_per_district: 60,
            items: 300,
            preloaded_orders: 8,
        },
        TpchScale::tiny(),
    )
}

/// Runs the mixed workload with constant preemption, then audits:
/// * every committed Order has exactly `ol_cnt` OrderLine rows;
/// * district `next_o_id` equals preloaded + committed NewOrders + 1 per
///   district (no lost or duplicated ids despite preemption mid-insert);
/// * warehouse YTD equals the sum of district YTDs (Payment atomicity).
#[test]
fn tpcc_consistency_survives_preemption() {
    let workers = 4;
    let (tpcc_scale, tpch_scale) = scales(workers as u64);
    let (engine, tpcc, tpch) = setup_mixed(workers as u64, Some(tpcc_scale), Some(tpch_scale), 77);
    let sim = SimConfig::default();
    let cfg = DriverConfig {
        policy: Policy::preemptdb(),
        n_workers: workers,
        shards: 1,
        queue_caps: vec![1, 8],
        batch_size: workers * 8,
        arrival_interval: sim.us_to_cycles(500),
        duration: sim.ms_to_cycles(80),
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    };
    let report = run(
        Runtime::Simulated(sim),
        cfg,
        Box::new(MixedWorkload::new(tpcc.clone(), tpch, 13)),
    );
    assert!(report.workers.preemptions > 100, "preemption was exercised");
    assert!(report.completed("neworder") > 100);

    let mut tx = engine.begin_si();
    let s = tpcc.scale;

    // (1) Order <-> OrderLine integrity.
    let mut audited_orders = 0;
    for w in 1..=s.warehouses {
        for d in 1..=s.districts_per_wh {
            let d_oid = tpcc.idx_district.get(dist_key(w, d)).unwrap();
            let dist = DistrictRow::decode(&tx.read(&tpcc.district, d_oid).unwrap());
            for o in 1..dist.next_o_id {
                let Some(o_oid) = tpcc.idx_order.get(order_key(w, d, o)) else {
                    panic!("order {w}/{d}/{o} missing from index");
                };
                let Some(raw) = tx.read(&tpcc.order, o_oid) else {
                    panic!("order {w}/{d}/{o} committed id but invisible row");
                };
                let order = OrderRow::decode(&raw);
                let mut lines = 0u32;
                tpcc.idx_order_line.range_scan(
                    order_line_key(w, d, o, 0),
                    order_line_key(w, d, o, 0xFF),
                    |_k, l_oid| {
                        if tx.read(&tpcc.order_line, l_oid).is_some() {
                            lines += 1;
                        }
                        ControlFlow::Continue(())
                    },
                );
                assert_eq!(
                    lines, order.ol_cnt,
                    "order {w}/{d}/{o}: {lines} visible lines, ol_cnt={}",
                    order.ol_cnt
                );
                audited_orders += 1;
            }
        }
    }
    assert!(audited_orders > 100, "audited {audited_orders} orders");

    // (2) Money conservation: warehouse YTD growth == sum of district YTD
    // growth (Payment updates both or neither).
    for w in 1..=s.warehouses {
        let w_oid = tpcc.idx_warehouse.get(wh_key(w)).unwrap();
        let wh = WarehouseRow::decode(&tx.read(&tpcc.warehouse, w_oid).unwrap());
        let mut district_ytd_growth = 0i64;
        for d in 1..=s.districts_per_wh {
            let d_oid = tpcc.idx_district.get(dist_key(w, d)).unwrap();
            let dist = DistrictRow::decode(&tx.read(&tpcc.district, d_oid).unwrap());
            district_ytd_growth += dist.ytd - 3_000_000;
        }
        assert_eq!(
            wh.ytd - 30_000_000,
            district_ytd_growth,
            "warehouse {w}: YTD mismatch"
        );
    }
    tx.commit().unwrap();

    // (3) No lingering uncommitted state after the run and the audit.
    assert_eq!(engine.registry().active_count(), 0, "no leaked transactions");
}

/// The same audit under the cooperative and wait policies — scheduling
/// policy must never affect correctness, only latency.
#[test]
fn consistency_is_policy_independent() {
    for policy in [Policy::Wait, Policy::cooperative(), Policy::preemptdb()] {
        let workers = 2;
        let (tpcc_scale, tpch_scale) = scales(workers as u64);
        let (engine, tpcc, tpch) =
            setup_mixed(workers as u64, Some(tpcc_scale), Some(tpch_scale), 99);
        let sim = SimConfig::default();
        let cfg = DriverConfig {
            policy,
            n_workers: workers,
            shards: 1,
            queue_caps: vec![1, 4],
            batch_size: 8,
            arrival_interval: sim.us_to_cycles(1_000),
            duration: sim.ms_to_cycles(40),
            always_interrupt: false,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        run(
            Runtime::Simulated(sim),
            cfg,
            Box::new(MixedWorkload::new(tpcc.clone(), tpch, 3)),
        );

        let mut tx = engine.begin_si();
        let s = tpcc.scale;
        for w in 1..=s.warehouses {
            let w_oid = tpcc.idx_warehouse.get(wh_key(w)).unwrap();
            let wh = WarehouseRow::decode(&tx.read(&tpcc.warehouse, w_oid).unwrap());
            let mut growth = 0i64;
            for d in 1..=s.districts_per_wh {
                let d_oid = tpcc.idx_district.get(dist_key(w, d)).unwrap();
                let dist = DistrictRow::decode(&tx.read(&tpcc.district, d_oid).unwrap());
                growth += dist.ytd - 3_000_000;
            }
            assert_eq!(
                wh.ytd - 30_000_000,
                growth,
                "policy {policy:?}, warehouse {w}"
            );
        }
        tx.commit().unwrap();
        assert!(engine.stats().commits > 0);
    }
}

/// Q2 sees a consistent snapshot even while NewOrders churn the engine:
/// repeated Q2 with fixed parameters inside one transaction epoch gives
/// identical results (the TPC-H tables are not written by the mix).
#[test]
fn q2_snapshot_stability_under_churn() {
    let workers = 2;
    let (tpcc_scale, tpch_scale) = scales(workers as u64);
    let (_engine, tpcc, tpch) = setup_mixed(workers as u64, Some(tpcc_scale), Some(tpch_scale), 55);

    // Churn TPC-C from background threads while Q2 runs in a loop.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..2u64 {
        let tpcc = tpcc.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            use preemptdb::workloads::tpcc::NewOrderParams;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(t);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut p = NewOrderParams::generate(&mut rng, &tpcc.scale, 1);
                p.rollback = false;
                tpcc.run_new_order(&p);
            }
        }));
    }

    let params = preemptdb::workloads::Q2Params {
        size: 1,
        type_id: 2,
        region: 3,
    };
    let reference = tpch.q2(&params).unwrap();
    for _ in 0..20 {
        assert_eq!(tpch.q2(&params).unwrap(), reference, "Q2 stable");
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}
