//! Isolation-level semantics: the anomalies snapshot isolation permits
//! and OCC certification rejects — the concurrency-control foundation
//! (§2.2) that preemptive scheduling relies on.

use preemptdb::{Engine, EngineConfig, IsolationLevel, TxError};

fn engine() -> Engine {
    Engine::new(EngineConfig::default())
}

/// Classic write skew: T1 reads {x, y} writes x; T2 reads {x, y} writes
/// y. Snapshot isolation commits both (the anomaly); serializable
/// certification must abort one.
#[test]
fn write_skew_allowed_under_si_rejected_under_serializable() {
    // Under SI: both commit.
    {
        let e = engine();
        let t = e.create_table("doctors");
        let mut setup = e.begin_si();
        let x = setup.insert(&t, b"on-call").unwrap();
        let y = setup.insert(&t, b"on-call").unwrap();
        setup.commit().unwrap();

        let mut t1 = e.begin(IsolationLevel::SnapshotIsolation);
        let mut t2 = e.begin(IsolationLevel::SnapshotIsolation);
        assert!(t1.read(&t, x).is_some() && t1.read(&t, y).is_some());
        assert!(t2.read(&t, x).is_some() && t2.read(&t, y).is_some());
        t1.update(&t, x, b"off-call").unwrap();
        t2.update(&t, y, b"off-call").unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // SI permits the skew
    }
    // Under Serializable: the second committer fails validation.
    {
        let e = engine();
        let t = e.create_table("doctors");
        let mut setup = e.begin_si();
        let x = setup.insert(&t, b"on-call").unwrap();
        let y = setup.insert(&t, b"on-call").unwrap();
        setup.commit().unwrap();

        let mut t1 = e.begin(IsolationLevel::Serializable);
        let mut t2 = e.begin(IsolationLevel::Serializable);
        assert!(t1.read(&t, x).is_some() && t1.read(&t, y).is_some());
        assert!(t2.read(&t, x).is_some() && t2.read(&t, y).is_some());
        t1.update(&t, x, b"off-call").unwrap();
        t2.update(&t, y, b"off-call").unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(TxError::ValidationFailed));
    }
}

/// Lost update is prevented even under SI (first-updater/committer wins).
#[test]
fn lost_update_prevented_under_si() {
    let e = engine();
    let t = e.create_table("counter");
    let mut setup = e.begin_si();
    let oid = setup.insert(&t, &0u64.to_le_bytes()).unwrap();
    setup.commit().unwrap();

    let mut a = e.begin_si();
    let mut b = e.begin_si();
    let va = u64::from_le_bytes(a.read(&t, oid).unwrap().as_ref().try_into().unwrap());
    let vb = u64::from_le_bytes(b.read(&t, oid).unwrap().as_ref().try_into().unwrap());
    a.update(&t, oid, &(va + 1).to_le_bytes()).unwrap();
    // B's update conflicts with A's in-flight write immediately.
    assert_eq!(b.update(&t, oid, &(vb + 1).to_le_bytes()), Err(TxError::WriteConflict));
    a.commit().unwrap();
}

/// Read-committed sees each newest committed version but never dirty
/// data.
#[test]
fn read_committed_never_reads_dirty() {
    let e = engine();
    let t = e.create_table("t");
    let mut setup = e.begin_si();
    let oid = setup.insert(&t, b"clean").unwrap();
    setup.commit().unwrap();

    let mut writer = e.begin_si();
    writer.update(&t, oid, b"dirty").unwrap();

    let mut rc = e.begin(IsolationLevel::ReadCommitted);
    assert_eq!(rc.read(&t, oid).unwrap().as_ref(), b"clean");
    writer.commit().unwrap();
    assert_eq!(rc.read(&t, oid).unwrap().as_ref(), b"dirty");
}

/// A serializable read-only transaction always commits (a snapshot read
/// is trivially consistent).
#[test]
fn serializable_read_only_always_commits() {
    let e = engine();
    let t = e.create_table("t");
    let mut setup = e.begin_si();
    let oid = setup.insert(&t, b"v").unwrap();
    setup.commit().unwrap();

    let mut ro = e.begin(IsolationLevel::Serializable);
    assert!(ro.read(&t, oid).is_some());

    // Concurrent churn after ro's snapshot.
    for i in 0..5u8 {
        let mut w = e.begin_si();
        w.update(&t, oid, &[i]).unwrap();
        w.commit().unwrap();
    }
    ro.commit().unwrap();
}

/// Serializable validation latches in address order: many transactions
/// with overlapping read/write sets, run concurrently from real threads,
/// terminate (no deadlock) and preserve a serializable invariant.
#[test]
fn concurrent_serializable_transfers_terminate_and_conserve() {
    let e = engine();
    let t = e.create_table("accts");
    let mut setup = e.begin_si();
    let oids: Vec<u64> = (0..8)
        .map(|_| setup.insert(&t, &100i64.to_le_bytes()).unwrap())
        .collect();
    setup.commit().unwrap();

    let mut handles = Vec::new();
    for tid in 0..4u64 {
        let e = e.clone();
        let t = t.clone();
        let oids = oids.clone();
        handles.push(std::thread::spawn(move || {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(tid);
            let mut committed = 0;
            while committed < 50 {
                let from = oids[rng.random_range(0..oids.len())];
                let to = oids[rng.random_range(0..oids.len())];
                if from == to {
                    continue;
                }
                let mut tx = e.begin(IsolationLevel::Serializable);
                let Some(fp) = tx.read(&t, from) else { continue };
                let Some(tp) = tx.read(&t, to) else { continue };
                let fv = i64::from_le_bytes(fp.as_ref().try_into().unwrap());
                let tv = i64::from_le_bytes(tp.as_ref().try_into().unwrap());
                if tx.update(&t, from, &(fv - 1).to_le_bytes()).is_err() {
                    continue;
                }
                if tx.update(&t, to, &(tv + 1).to_le_bytes()).is_err() {
                    continue;
                }
                if tx.commit().is_ok() {
                    committed += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut audit = e.begin_si();
    let total: i64 = oids
        .iter()
        .map(|&o| i64::from_le_bytes(audit.read(&t, o).unwrap().as_ref().try_into().unwrap()))
        .sum();
    assert_eq!(total, 800, "money conserved across 200 serializable transfers");
    audit.commit().unwrap();
}
