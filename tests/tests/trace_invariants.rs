//! Trace-based invariant tests (ISSUE 3): run the scheduling stack on the
//! deterministic simulator with `preempt-trace` recording enabled, then
//! check lifecycle invariants on the merged event trace.
//!
//! * every `HandlerEnter` is preceded by a matching `UipiSent` and
//!   `PendingNoticed` on that worker;
//! * handler enter/exit events nest properly and never exceed the
//!   configured level count;
//! * no preemption event lands between a latch acquire and its release;
//! * every `WatchdogResend` is eventually followed by a delivery on the
//!   target worker or a degradation flip;
//! * same-seed runs produce byte-identical merged traces for the Wait,
//!   Cooperative, and Preempt policies;
//! * with tracing disabled the run records nothing.

use preempt_faults::FaultPlan;
use preemptdb::sched::{
    run, DriverConfig, Policy, Request, RobustnessConfig, RunReport, Runtime, WorkOutcome,
    WorkloadFactory,
};
use preemptdb::trace::{MergedTrace, TraceConfig, TraceEvent, TraceSession};
use preemptdb::SimConfig;

/// Long low-priority "scans" and short high-priority "points", as in the
/// fault-injection tests: scans sit in preemption-point loops long enough
/// that every high-priority batch triggers real preemptions.
struct Counted {
    scan_iters: u64,
}

impl WorkloadFactory for Counted {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let iters = self.scan_iters;
        Some(Request::new("scan", 0, now, move || {
            for _ in 0..iters {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, move || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

const N_WORKERS: usize = 4;

fn traced_cfg(policy: Policy, duration_ms: u64, trace: Option<TraceSession>) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: duration_ms * 2_400_000,
        always_interrupt: false,
        robustness: RobustnessConfig::default(),
        recovery: Default::default(),
        trace,
        metrics: None,
        prov: None,
    }
}

fn run_traced(cfg: DriverConfig, faults: Option<FaultPlan>) -> RunReport {
    let sim = SimConfig {
        faults,
        ..SimConfig::default()
    };
    run(
        Runtime::Simulated(sim),
        cfg,
        Box::new(Counted { scan_iters: 2_000 }),
    )
}

/// A preemptive run with a live session yields a non-empty merged trace,
/// with no ring overflow at this scale, and a populated send→handler
/// latency breakdown on the report (the ISSUE 3 acceptance check).
#[test]
fn preempt_run_produces_trace_and_breakdown() {
    let session = TraceSession::new(TraceConfig::default());
    let r = run_traced(
        traced_cfg(Policy::preemptdb(), 40, Some(session)),
        None,
    );
    let t = r.trace.as_ref().expect("session was installed");
    assert!(!t.is_empty());
    assert_eq!(t.dropped, 0, "rings must not overflow at this scale");
    // One ring per worker plus the scheduler's.
    assert_eq!(t.ring_labels.len(), N_WORKERS + 1);
    let b = r.preempt_breakdown.as_ref().expect("derived from trace");
    assert!(b.send_to_notice.count > 0, "sends paired with notices");
    assert!(b.send_to_handler.count > 0, "sends paired with handlers");
    assert!(
        b.send_to_notice.min > 0,
        "virtual delivery latency is nonzero (uintr_delivery_cycles)"
    );
}

/// Lifecycle causality per worker: pending bits are only noticed after at
/// least as many sends targeted the worker, and handlers only enter for
/// previously noticed vectors.
#[test]
fn handler_enters_have_matching_send_and_notice() {
    let session = TraceSession::new(TraceConfig::default());
    let r = run_traced(
        traced_cfg(Policy::preemptdb(), 40, Some(session)),
        None,
    );
    let t = r.trace.as_ref().expect("trace recorded");
    assert_eq!(t.dropped, 0, "a lossy trace cannot support causal checks");

    let mut sends = [0u64; N_WORKERS];
    let mut noticed_bits = [0u64; N_WORKERS];
    let mut enters = [0u64; N_WORKERS];
    let mut saw_handler = false;
    for rec in &t.records {
        match rec.event {
            TraceEvent::UipiSent { target, .. } => {
                if let Some(s) = sends.get_mut(target as usize) {
                    *s += 1;
                }
            }
            TraceEvent::PendingNoticed { vectors } => {
                let w = rec.worker as usize;
                noticed_bits[w] += u64::from(vectors.count_ones());
                assert!(
                    noticed_bits[w] <= sends[w],
                    "worker {w} noticed {} vector bits after only {} sends at ts {}",
                    noticed_bits[w],
                    sends[w],
                    rec.ts
                );
            }
            TraceEvent::HandlerEnter { .. } => {
                let w = rec.worker as usize;
                enters[w] += 1;
                saw_handler = true;
                assert!(
                    enters[w] <= noticed_bits[w],
                    "worker {w} entered handler {} times but noticed only {} vectors at ts {}",
                    enters[w],
                    noticed_bits[w],
                    rec.ts
                );
            }
            _ => {}
        }
    }
    assert!(saw_handler, "the scenario must exercise real deliveries");
}

/// Handler enter/exit pairs nest: depth rises by one on enter, falls by
/// one on exit, never goes negative, and never exceeds the number of
/// preemptive levels (here one: `queue_caps = [1, 4]`).
#[test]
fn handler_nesting_is_balanced_and_bounded() {
    let session = TraceSession::new(TraceConfig::default());
    let cfg = traced_cfg(Policy::preemptdb(), 40, Some(session));
    let max_depth = (cfg.queue_caps.len() - 1) as u64;
    let r = run_traced(cfg, None);
    let t = r.trace.as_ref().expect("trace recorded");
    assert_eq!(t.dropped, 0);

    for w in 0..N_WORKERS as u16 {
        let mut depth = 0u64;
        let mut enters = 0u64;
        let mut exits = 0u64;
        for rec in t.worker_records(w) {
            match rec.event {
                TraceEvent::HandlerEnter { .. } => {
                    depth += 1;
                    enters += 1;
                    assert!(
                        depth <= max_depth,
                        "worker {w} handler depth {depth} exceeds {max_depth}"
                    );
                    assert_eq!(
                        u64::from(rec.depth),
                        depth,
                        "recorded depth disagrees with replayed depth"
                    );
                }
                TraceEvent::HandlerExit { .. } => {
                    assert!(depth > 0, "worker {w} handler exit without enter");
                    assert_eq!(u64::from(rec.depth), depth);
                    depth -= 1;
                    exits += 1;
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "worker {w} run ended inside a handler");
        assert_eq!(enters, exits);
        assert!(enters > 0, "worker {w} saw no deliveries");
    }
}

/// While a worker holds a storage latch, no preemption event may appear
/// on its timeline: latch scopes contain no preemption points, and
/// version-chain installs additionally run non-preemptible (§4.4).
#[test]
fn no_preemption_events_inside_latch_windows() {
    use preemptdb::workloads::{setup_mixed, MixedWorkload, TpccScale, TpchScale};
    let (_e, tpcc, tpch) = setup_mixed(1, Some(TpccScale::tiny()), Some(TpchScale::tiny()), 5);
    let factory = MixedWorkload::new(tpcc, tpch, 9);

    // Latch traffic is heavy: size the rings so nothing is evicted.
    let session = TraceSession::new(TraceConfig {
        capacity: 1 << 19,
        ..Default::default()
    });
    let mut cfg = traced_cfg(Policy::preemptdb(), 20, Some(session));
    cfg.n_workers = 2;
    let sim = SimConfig::default();
    let r = run(Runtime::Simulated(sim), cfg, Box::new(factory));
    let t = r.trace.as_ref().expect("trace recorded");
    assert_eq!(t.dropped, 0, "grow the ring capacity if this fires");

    let mut latch_events = 0u64;
    let mut preempt_events = 0u64;
    for w in 0..2u16 {
        let mut held = 0u64;
        for rec in t.worker_records(w) {
            match rec.event {
                TraceEvent::LatchAcquire { .. } => {
                    held += 1;
                    latch_events += 1;
                }
                TraceEvent::LatchRelease { .. } => {
                    held = held.saturating_sub(1);
                    latch_events += 1;
                }
                ev if ev.is_preemption() => {
                    preempt_events += 1;
                    assert_eq!(
                        held, 0,
                        "worker {w}: {ev:?} at ts {} inside a latch window",
                        rec.ts
                    );
                }
                _ => {}
            }
        }
        assert_eq!(held, 0, "worker {w} ended the run holding a latch");
    }
    assert!(latch_events > 0, "the engine workload must take latches");
    assert!(preempt_events > 0, "the run must deliver preemptions");
}

/// Under dropped interrupts, every watchdog re-send (outside the shutdown
/// tail) is eventually followed by a delivery on the target worker — or
/// the scheduler gives up on user interrupts entirely and degrades.
#[test]
fn watchdog_resends_resolve_or_degrade() {
    let session = TraceSession::new(TraceConfig::default());
    let r = run_traced(
        traced_cfg(Policy::preemptdb(), 40, Some(session)),
        Some(FaultPlan::quiet(7).with_drop_ppm(200_000)),
    );
    let t = r.trace.as_ref().expect("trace recorded");
    assert_eq!(t.dropped, 0);

    let resends: Vec<(usize, u64, u16)> = t
        .records
        .iter()
        .enumerate()
        .filter_map(|(i, rec)| match rec.event {
            TraceEvent::WatchdogResend { target } => Some((i, rec.ts, target)),
            _ => None,
        })
        .collect();
    assert!(!resends.is_empty(), "20 % drop must trigger re-sends");

    let end = t.records.last().map_or(0, |rec| rec.ts);
    // Ignore re-sends in the final 5 ms: their delivery may legitimately
    // fall past the end of the run.
    let tail = end.saturating_sub(5 * 2_400_000);
    for (i, ts, target) in resends {
        if ts >= tail {
            continue;
        }
        let resolved = t.records[i + 1..].iter().any(|rec| match rec.event {
            TraceEvent::PendingNoticed { .. } | TraceEvent::HandlerEnter { .. } => {
                rec.worker == target
            }
            TraceEvent::Degrade { on } => on,
            _ => false,
        });
        assert!(
            resolved,
            "re-send to worker {target} at ts {ts} neither delivered nor degraded"
        );
    }
}

/// With every interrupt dropped and a hair-trigger threshold, the
/// scheduler must flip to degraded mode — and the flip shows up in the
/// trace.
#[test]
fn total_interrupt_loss_degrades_in_trace() {
    let session = TraceSession::new(TraceConfig::default());
    let mut cfg = traced_cfg(Policy::preemptdb(), 40, Some(session));
    cfg.robustness.degrade_threshold_ppm = 100_000;
    cfg.robustness.degrade_window = 8;
    let r = run_traced(cfg, Some(FaultPlan::quiet(3).with_drop_ppm(1_000_000)));
    let t = r.trace.as_ref().expect("trace recorded");
    assert!(
        t.records
            .iter()
            .any(|rec| rec.event == TraceEvent::Degrade { on: true }),
        "full interrupt loss must degrade"
    );
    assert!(
        !t.records
            .iter()
            .any(|rec| matches!(rec.event, TraceEvent::HandlerEnter { .. })),
        "no handler can run when every send is dropped"
    );
}

fn canonical_trace(policy: Policy, seed_cfg_ms: u64) -> (String, MergedTrace) {
    let session = TraceSession::new(TraceConfig::default());
    let r = run_traced(traced_cfg(policy, seed_cfg_ms, Some(session)), None);
    let t = r.trace.expect("trace recorded");
    (t.canonical_text(), t)
}

/// Two runs with the same `SimConfig` seed and policy produce
/// byte-identical merged traces — for all three scheduling policies.
#[test]
fn same_config_runs_are_byte_identical() {
    for policy in [
        Policy::Wait,
        Policy::Cooperative {
            yield_interval: 10_000,
        },
        Policy::preemptdb(),
    ] {
        let (a, ta) = canonical_trace(policy, 30);
        let (b, _) = canonical_trace(policy, 30);
        assert!(!ta.is_empty(), "{policy:?} run recorded events");
        assert_eq!(a, b, "{policy:?}: merged traces must be byte-identical");
    }
}

/// Sharded-plane determinism (ISSUE 8): with the same seed and shard
/// count, runs are byte-identical at 1, 2 and 4 shards. The shared
/// workload factory is serialized behind one lock and the simulator's
/// virtual-time engine orders every shard core deterministically, so
/// admission, dispatch, steals and shootdowns replay exactly.
#[test]
fn sharded_same_seed_runs_are_byte_identical() {
    for shards in [1usize, 2, 4] {
        let mk = || {
            let session = TraceSession::new(TraceConfig::default());
            let mut cfg = traced_cfg(Policy::preemptdb(), 30, Some(session));
            cfg.shards = shards;
            let r = run_traced(cfg, None);
            let t = r.trace.expect("trace recorded");
            (t.canonical_text(), t)
        };
        let (a, ta) = mk();
        let (b, _) = mk();
        assert!(!ta.is_empty(), "shards={shards} run recorded events");
        assert_eq!(
            ta.ring_labels.len(),
            N_WORKERS + shards,
            "one ring per worker plus one per shard scheduler"
        );
        assert_eq!(
            a, b,
            "shards={shards}: merged traces must be byte-identical"
        );
    }
}

/// `trace: None` disables collection entirely: the report carries no
/// trace, and a live-but-uninstalled session observes zero events from
/// the run (workers without a registered ring record nothing).
#[test]
fn disabled_tracing_records_nothing() {
    let bystander = TraceSession::new(TraceConfig::default());
    let r = run_traced(traced_cfg(Policy::preemptdb(), 20, None), None);
    assert!(r.trace.is_none());
    assert!(r.preempt_breakdown.is_none());
    assert!(
        bystander.merge().is_empty(),
        "a session not wired into the run must stay empty"
    );
}
