//! Property tests for the userspace context switch: arbitrary switch
//! schedules across many contexts must preserve every context's control
//! flow and locals (the assembly's callee-saved discipline), and CLS
//! isolation must hold under any interleaving.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use preemptdb::context::cls::ClsCell;
use preemptdb::context::switch::{switch_to, Context};
use preemptdb::context::tcb::{self, CtxState, Tcb};

static COUNTER: ClsCell<u64> = ClsCell::new(|| 0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N generator contexts, each yielding an incrementing local counter;
    /// a random resume schedule must observe each context's own sequence
    /// 1, 2, 3, ... regardless of interleaving — i.e. locals survive
    /// suspension and no context observes another's progress. (Failures
    /// inside a context poison it, which the post-schedule state check
    /// catches.)
    #[test]
    fn random_schedules_preserve_per_context_state(
        n_ctx in 2usize..6,
        schedule in prop::collection::vec(0usize..6, 1..60),
    ) {
        let outputs: Rc<RefCell<Vec<Vec<u64>>>> =
            Rc::new(RefCell::new(vec![Vec::new(); n_ctx]));
        let root = tcb::root_ptr() as usize;

        let contexts: Vec<Context> = (0..n_ctx)
            .map(|i| {
                let out_ptr = Rc::as_ptr(&outputs) as usize;
                Context::with_default_stack("prop", move || {
                    // Per-context state: a plain local and a CLS slot.
                    let mut local = 0u64;
                    COUNTER.set(0);
                    loop {
                        local += 1;
                        COUNTER.with(|c| *c += 1);
                        assert_eq!(local, COUNTER.get(), "local and CLS agree");
                        // SAFETY: `outputs` outlives the contexts (the
                        // schedule below finishes before anything drops).
                        let outs =
                            unsafe { &*(out_ptr as *const RefCell<Vec<Vec<u64>>>) };
                        outs.borrow_mut()[i].push(local);
                        switch_to(unsafe { &*(root as *const Tcb) });
                    }
                })
                .unwrap()
            })
            .collect();

        let mut resumes = vec![0u64; n_ctx];
        for &pick in &schedule {
            let i = pick % n_ctx;
            contexts[i].resume();
            resumes[i] += 1;
        }

        let outs = outputs.borrow();
        for (i, seq) in outs.iter().enumerate() {
            let expected: Vec<u64> = (1..=resumes[i]).collect();
            prop_assert_eq!(seq, &expected, "context {} sequence", i);
            let expected_state = if resumes[i] > 0 {
                CtxState::Suspended
            } else {
                CtxState::Ready
            };
            prop_assert_eq!(contexts[i].tcb().state(), expected_state);
            prop_assert_eq!(contexts[i].tcb().resumes(), resumes[i]);
            prop_assert!(contexts[i].tcb().panic_message().is_none());
        }
    }

    /// Interleaved non-preemptible regions: each context tracks its own
    /// nesting depth independently across switches.
    #[test]
    fn nonpreemptible_depth_is_per_context(depths in prop::collection::vec(1u32..5, 2..5)) {
        use preemptdb::context::nonpreempt::NonPreemptGuard;
        let root = tcb::root_ptr() as usize;

        let contexts: Vec<Context> = depths
            .iter()
            .map(|&d| {
                Context::with_default_stack("np", move || {
                    let _guards: Vec<NonPreemptGuard> =
                        (0..d).map(|_| NonPreemptGuard::enter()).collect();
                    assert_eq!(NonPreemptGuard::depth(), d);
                    // Suspend while holding the guards.
                    switch_to(unsafe { &*(root as *const Tcb) });
                    // Depth intact after resumption.
                    assert_eq!(NonPreemptGuard::depth(), d);
                })
                .unwrap()
            })
            .collect();

        for c in &contexts {
            c.resume(); // run to the suspension point
            // The root context's own depth is unaffected.
            prop_assert_eq!(NonPreemptGuard::depth(), 0);
        }
        for (c, &d) in contexts.iter().zip(&depths) {
            prop_assert!(c.tcb().is_nonpreemptible());
            prop_assert_eq!(c.tcb().lock_depth(), d);
            c.resume(); // finish
            prop_assert_eq!(c.tcb().state(), CtxState::Finished);
        }
    }
}
