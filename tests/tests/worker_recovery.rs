//! Worker failure containment and recovery invariants (ISSUE 6): the
//! panic firewall, the supervisor's liveness leases, and the central
//! orphan sweep, all driven by seeded chaos from `preempt-faults`.
//!
//! The acceptance bar: with seeded transaction-panic + wedge + mid-latch
//! panic injection, a full driver run completes with no process panic,
//! reports zero lost or duplicated committed transactions, leaks zero
//! latches and zero active-txn registry slots at shutdown, and produces
//! a byte-identical recovery trajectory across two same-seed runs.
//!
//! Chaos comes in three kinds (all seeded, all deterministic in virtual
//! time):
//! * `txn_panic_ppm` — panic inside the transaction body; the firewall
//!   must contain it and turn it into a typed abort;
//! * `latch_panic_ppm` — panic *while holding* a write latch; the unwind
//!   must release the latch and the MVCC slot;
//! * `wedge_ppm`/`wedge_cycles` — the worker burns virtual time without
//!   polling its receiver or acking delivery epochs; the supervisor's
//!   lease must expire, the worker be terminated and respawned (or
//!   quarantined once the respawn budget is spent).

use std::sync::Arc;

use preempt_faults::FaultPlan;
use preemptdb::mvcc::{Engine, EngineConfig, Oid, Table};
use preemptdb::sched::{
    run, DriverConfig, Policy, RecoveryHooks, Request, RobustnessConfig, RunReport, Runtime,
    WorkOutcome, WorkloadFactory,
};
use preemptdb::trace::{TraceConfig, TraceEvent, TraceSession};
use preemptdb::SimConfig;

const N_WORKERS: usize = 4;
const N_ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;

/// A deposit ledger on the real MVCC engine: every high-priority
/// transaction reads two account rows and adds 1 to each, so each
/// *committed* transaction grows the total balance by exactly 2. A lost
/// commit (reported but not applied) or a duplicated one (applied twice)
/// is visible in the post-run snapshot sum. Low-priority transactions
/// are long read-only scans over the same rows — preemption targets
/// that also hold read latches under injected panics.
struct Bank {
    engine: Engine,
    table: Arc<Table>,
    oids: Arc<Vec<Oid>>,
    counter: u64,
}

fn setup_bank() -> (Engine, Arc<Table>, Arc<Vec<Oid>>) {
    let engine = Engine::new(EngineConfig::default());
    let table = engine.create_table("accounts");
    let mut tx = engine.begin_si();
    let mut oids = Vec::with_capacity(N_ACCOUNTS as usize);
    for _ in 0..N_ACCOUNTS {
        let oid = tx
            .insert(&table, &INITIAL_BALANCE.to_le_bytes())
            .expect("seed insert");
        oids.push(oid);
    }
    tx.commit().expect("seed commit");
    (engine, table, Arc::new(oids))
}

impl Bank {
    fn new(engine: Engine, table: Arc<Table>, oids: Arc<Vec<Oid>>) -> Bank {
        Bank {
            engine,
            table,
            oids,
            counter: 0,
        }
    }

    /// Deterministic account pair for the next request (no RNG: the pair
    /// sequence depends only on the request sequence, which the
    /// simulator makes identical across same-seed runs).
    fn next_pair(&mut self) -> (usize, usize) {
        self.counter = self.counter.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (self.counter >> 33) % N_ACCOUNTS;
        let b = (a + 1 + (self.counter >> 17) % (N_ACCOUNTS - 1)) % N_ACCOUNTS;
        (a as usize, b as usize)
    }
}

fn read_balance(tx: &mut preemptdb::mvcc::Transaction<'_>, table: &Table, oid: Oid) -> u64 {
    let raw = tx.read(table, oid).expect("account row visible");
    u64::from_le_bytes(raw[..8].try_into().expect("8-byte balance"))
}

impl WorkloadFactory for Bank {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let engine = self.engine.clone();
        let table = self.table.clone();
        let oids = self.oids.clone();
        Some(Request::new("scan", 0, now, move || {
            let mut tx = engine.begin_si();
            let mut sum = 0u64;
            for &oid in oids.iter() {
                sum += read_balance(&mut tx, &table, oid);
                // Stretch the scan so it is a worthwhile preemption
                // target (~64 * 20k cycles ≈ 0.5 ms).
                for _ in 0..20 {
                    preemptdb::context::runtime::preempt_point(1_000);
                }
            }
            std::hint::black_box(sum);
            drop(tx);
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        let engine = self.engine.clone();
        let table = self.table.clone();
        let oids = self.oids.clone();
        let (a, b) = self.next_pair();
        Some(Request::new("deposit", 1, now, move || {
            // Internal first-updater-wins retry, like the TPC-C runners:
            // the request commits exactly once or not at all.
            let mut retries = 0u64;
            loop {
                let mut tx = engine.begin_si();
                let va = read_balance(&mut tx, &table, oids[a]);
                if tx.update(&table, oids[a], &(va + 1).to_le_bytes()).is_ok() {
                    let vb = read_balance(&mut tx, &table, oids[b]);
                    if tx.update(&table, oids[b], &(vb + 1).to_le_bytes()).is_ok()
                        && tx.commit().is_ok()
                    {
                        return WorkOutcome::committed(retries);
                    }
                }
                retries += 1;
                if retries > 1_000 {
                    return WorkOutcome::failed(retries);
                }
                preemptdb::context::runtime::preempt_point(2_400);
            }
        }))
    }
}

/// Snapshot sum of all account balances.
fn total_balance(engine: &Engine, table: &Table, oids: &[Oid]) -> u64 {
    let mut tx = engine.begin_si();
    let mut sum = 0u64;
    for &oid in oids {
        sum += read_balance(&mut tx, table, oid);
    }
    sum
}

fn bank_cfg(engine: &Engine, duration_ms: u64, rb: RobustnessConfig) -> DriverConfig {
    let sweep_engine = engine.clone();
    DriverConfig {
        policy: Policy::preemptdb(),
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: duration_ms * 2_400_000,
        always_interrupt: false,
        robustness: rb,
        recovery: RecoveryHooks {
            sweep: Some(Arc::new(move |owner| sweep_engine.orphan_sweep(owner))),
            spawner: None, // the sim runner installs its default respawner
        },
        trace: None,
        metrics: None,
        prov: None,
    }
}

fn chaos_rb() -> RobustnessConfig {
    RobustnessConfig {
        dead_after: 4_800_000, // 2 ms: leases expire within the run
        exit_wait: 2_400_000,
        max_respawns: 100, // keep recovering for the whole run
        ..RobustnessConfig::default()
    }
}

fn run_sim(plan: FaultPlan, cfg: DriverConfig, factory: Box<dyn WorkloadFactory>) -> RunReport {
    let sim = SimConfig {
        faults: Some(plan),
        ..SimConfig::default()
    };
    run(Runtime::Simulated(sim), cfg, factory)
}

/// Audits that the engine leaked nothing: no registry slot is still
/// active, no worker owns a force-releasable latch or a pending intent,
/// and a fresh read-modify-write transaction gets through every row
/// (which would spin forever on a leaked write latch).
fn assert_engine_clean(engine: &Engine, table: &Arc<Table>, oids: &[Oid]) {
    assert_eq!(
        engine.registry().active_count(),
        0,
        "active-txn slots leaked past shutdown"
    );
    for worker in 0..N_WORKERS as u64 {
        let sweep = engine.orphan_sweep(worker);
        assert!(
            sweep.is_empty(),
            "worker {worker} left orphans behind: {sweep:?}"
        );
    }
    let mut tx = engine.begin_si();
    for &oid in oids {
        let v = read_balance(&mut tx, table, oid);
        tx.update(table, oid, &v.to_le_bytes()).expect("row writable");
    }
    tx.commit().expect("post-run write commits");
}

/// Invariant 1 — panic mid-latch releases the latch and the slot: with
/// panics injected both inside transaction bodies and *while holding a
/// write latch*, the run completes, the firewall contains every panic
/// (captured messages prove it fired), and the shutdown audit finds no
/// held latch, no active slot, and no lost or duplicated deposit.
#[test]
fn panic_mid_latch_releases_latch_and_slot() {
    let (engine, table, oids) = setup_bank();
    let plan = FaultPlan::quiet(41)
        .with_txn_panic_ppm(30_000)
        .with_latch_panic_ppm(50_000);
    let factory = Bank::new(engine.clone(), table.clone(), oids.clone());
    let r = run_sim(
        plan,
        bank_cfg(&engine, 40, RobustnessConfig::default()),
        Box::new(factory),
    );

    let faults = r.faults.as_ref().expect("ran under a fault plan");
    assert!(faults.txn_panics > 0, "plan injected transaction panics");
    assert!(faults.latch_panics > 0, "plan injected mid-latch panics");
    assert_eq!(
        r.workers.panics,
        faults.txn_panics + faults.latch_panics,
        "every injected panic was contained by the firewall, none twice"
    );
    assert!(
        r.panic_messages.iter().any(|m| m.contains("transaction panic")),
        "txn panic message captured: {:?}",
        r.panic_messages
    );
    assert!(
        r.panic_messages.iter().any(|m| m.contains("write latch")),
        "latch panic message captured: {:?}",
        r.panic_messages
    );
    assert!(
        r.core_failures.is_empty(),
        "no panic escaped to kill a worker core: {:?}",
        r.core_failures
    );

    // Zero lost, zero duplicated: the snapshot says exactly what the
    // report says.
    let expected = N_ACCOUNTS * INITIAL_BALANCE + 2 * r.completed("deposit");
    assert_eq!(
        total_balance(&engine, &table, &oids),
        expected,
        "committed deposits and snapshot disagree"
    );
    assert!(r.completed("deposit") > 50, "deposits kept committing");
    assert_engine_clean(&engine, &table, &oids);
}

/// Invariant 2 — post-recovery snapshot reads match a fault-free run:
/// after a chaos run with panics *and* supervisor-driven kills (wedges),
/// the surviving database is exactly the database a fault-free run
/// would produce for the same committed set — conservation holds, the
/// audit transaction sees every row, and the fault-free control run
/// satisfies the identical audit.
#[test]
fn post_recovery_reads_match_fault_free_same_seed_run() {
    // Chaos run: panics + wedges long enough to trip the lease.
    let (engine, table, oids) = setup_bank();
    let plan = FaultPlan::quiet(97)
        .with_txn_panic_ppm(20_000)
        .with_wedge(8, 24_000_000); // 10 ms wedge vs 2 ms lease
    let factory = Bank::new(engine.clone(), table.clone(), oids.clone());
    let r = run_sim(plan, bank_cfg(&engine, 60, chaos_rb()), Box::new(factory));

    assert!(
        r.scheduler.workers_dead > 0,
        "a wedge tripped the liveness lease"
    );
    assert!(
        r.scheduler.workers_respawned > 0,
        "dead workers were respawned"
    );
    let expected = N_ACCOUNTS * INITIAL_BALANCE + 2 * r.completed("deposit");
    assert_eq!(total_balance(&engine, &table, &oids), expected);
    assert_engine_clean(&engine, &table, &oids);

    // Fault-free control with the same workload seed: same audit, same
    // conservation law, no recovery actions.
    let (engine2, table2, oids2) = setup_bank();
    let factory2 = Bank::new(engine2.clone(), table2.clone(), oids2.clone());
    let r2 = run_sim(
        FaultPlan::quiet(97),
        bank_cfg(&engine2, 60, chaos_rb()),
        Box::new(factory2),
    );
    assert_eq!(r2.scheduler.workers_dead, 0, "no false-positive kills");
    assert_eq!(r2.workers.panics, 0);
    let expected2 = N_ACCOUNTS * INITIAL_BALANCE + 2 * r2.completed("deposit");
    assert_eq!(total_balance(&engine2, &table2, &oids2), expected2);
    assert_engine_clean(&engine2, &table2, &oids2);
}

/// ISSUE 8 — sharded conservation under chaos: the two-shard plane with
/// panics and wedges injected still conserves the ledger, leaks no
/// latch or registry slot, and replays the same recovery counters and
/// committed set across two same-seed runs. Work stealing between the
/// shard-local siblings is live during the run.
#[test]
fn sharded_chaos_conserves_bank_and_replays() {
    fn chaos_run() -> (RunReport, Engine, Arc<Table>, Arc<Vec<Oid>>) {
        let (engine, table, oids) = setup_bank();
        let plan = FaultPlan::quiet(97)
            .with_txn_panic_ppm(20_000)
            .with_wedge(8, 24_000_000);
        let mut cfg = bank_cfg(&engine, 60, chaos_rb());
        cfg.shards = 2;
        let factory = Bank::new(engine.clone(), table.clone(), oids.clone());
        let r = run_sim(plan, cfg, Box::new(factory));
        (r, engine, table, oids)
    }

    let (r, engine, table, oids) = chaos_run();
    assert!(r.scheduler.workers_dead > 0, "a wedge tripped a lease");
    assert!(r.scheduler.workers_respawned > 0, "dead workers respawned");
    let expected = N_ACCOUNTS * INITIAL_BALANCE + 2 * r.completed("deposit");
    assert_eq!(
        total_balance(&engine, &table, &oids),
        expected,
        "sharded chaos lost or duplicated a deposit"
    );
    assert!(r.completed("deposit") > 50, "deposits kept committing");
    assert_engine_clean(&engine, &table, &oids);

    let (r2, engine2, table2, oids2) = chaos_run();
    assert_eq!(r.completed("deposit"), r2.completed("deposit"));
    assert_eq!(r.workers.panics, r2.workers.panics);
    assert!(
        r.workers.steals > 0,
        "idle shard siblings steal from wedged peers"
    );
    assert_eq!(r.workers.steals, r2.workers.steals, "steal count replays");
    assert_eq!(r.scheduler.shootdowns, r2.scheduler.shootdowns);
    assert_eq!(r.scheduler.workers_dead, r2.scheduler.workers_dead);
    assert_eq!(r.scheduler.workers_respawned, r2.scheduler.workers_respawned);
    let expected2 = N_ACCOUNTS * INITIAL_BALANCE + 2 * r2.completed("deposit");
    assert_eq!(total_balance(&engine2, &table2, &oids2), expected2);
    assert_engine_clean(&engine2, &table2, &oids2);
}

/// ISSUE 8 — cross-shard shootdown fires when a shard wedges: with
/// supervision off and workers wedging permanently at staggered times
/// (moderate per-point odds on a highs-only stream, so the two shards
/// do not die in the same tick), the first fully-wedged shard's top
/// queues stop draining; after the bounded dispatch retries its
/// scheduler gives up locally and re-homes the starved high-priority
/// remainder onto the other, still-live shard's workers. The trace
/// carries the `Shootdown` events with the origin shard attached.
#[test]
fn wedged_shard_shoots_starved_work_cross_shard() {
    /// Highs only: no long scans, so wedge arrival is a per-request
    /// geometric draw and the shards wedge out at different ticks.
    struct PointsOnly;
    impl WorkloadFactory for PointsOnly {
        fn make_low(&mut self, _now: u64) -> Option<Request> {
            None
        }
        fn make_high(&mut self, now: u64) -> Option<Request> {
            Some(Request::new("point", 1, now, || {
                for _ in 0..20 {
                    preemptdb::context::runtime::preempt_point(1_000);
                }
                WorkOutcome::default()
            }))
        }
    }

    let plan = FaultPlan::quiet(13).with_wedge(10_000, 1 << 40);
    let session = TraceSession::new(TraceConfig::default());
    let mut cfg = synthetic_cfg(
        60,
        RobustnessConfig {
            supervise: false,
            ..chaos_rb()
        },
        Some(session),
    );
    cfg.shards = 2;
    let r = run_sim(plan, cfg, Box::new(PointsOnly));

    assert!(
        r.scheduler.shootdowns > 0,
        "wedged shards must re-home starved work cross-shard"
    );
    let t = r.trace.as_ref().expect("trace session installed");
    let shot: Vec<(u16, u16)> = t
        .records
        .iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::Shootdown { from_shard, worker } => Some((from_shard, worker)),
            _ => None,
        })
        .collect();
    assert_eq!(shot.len() as u64, r.scheduler.shootdowns, "one event per move");
    for (from_shard, worker) in shot {
        assert!(from_shard < 2, "origin shard id is recorded");
        // 4 workers, 2 shards: shard 0 owns workers {0, 1}, shard 1 owns
        // {2, 3}; a shootdown always lands on the *other* shard.
        let target_shard = u16::from(worker >= 2);
        assert_ne!(
            target_shard, from_shard,
            "a shootdown never targets the origin shard's own workers"
        );
    }
}

/// Synthetic no-engine workload for the supervision-timing tests.
struct Synthetic;
impl WorkloadFactory for Synthetic {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("scan", 0, now, || {
            for _ in 0..2_000 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

fn synthetic_cfg(duration_ms: u64, rb: RobustnessConfig, trace: Option<TraceSession>) -> DriverConfig {
    DriverConfig {
        policy: Policy::preemptdb(),
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: 2_400_000,
        duration: duration_ms * 2_400_000,
        always_interrupt: false,
        robustness: rb,
        recovery: Default::default(),
        trace,
        metrics: None,
        prov: None,
    }
}

/// Invariant 3 — wedged-worker detection fires within the configured
/// window: a worker wedged for longer than the run would otherwise
/// tolerate is declared dead while still wedged (the wedge outlives
/// `dead_after` by construction), its replacement keeps completing
/// high-priority work, and an unsupervised control run with the same
/// seed strands its workers and completes strictly less.
#[test]
fn wedge_detection_fires_within_window() {
    // Effectively-infinite wedges: only supervision brings workers back.
    let plan = FaultPlan::quiet(11).with_wedge(6, 1 << 40);
    let session = TraceSession::new(TraceConfig::default());
    let supervised = run_sim(
        plan,
        synthetic_cfg(60, chaos_rb(), Some(session)),
        Box::new(Synthetic),
    );
    assert!(
        supervised.faults.as_ref().expect("fault plan").wedges_injected > 0,
        "the plan actually wedged workers"
    );
    assert!(supervised.scheduler.workers_dead > 0, "lease expired");
    assert!(supervised.scheduler.workers_respawned > 0, "respawned");

    // Detection obeys the window on both sides: no lease can expire
    // before one full `dead_after` window has elapsed, and a window
    // longer than the whole run means no worker is ever declared dead —
    // the knob, not luck, gates detection.
    let trace = supervised.trace.as_ref().expect("trace session installed");
    let deaths: Vec<u64> = trace
        .records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::WorkerDead { .. }))
        .map(|r| r.ts)
        .collect();
    assert!(!deaths.is_empty());
    let rb = chaos_rb();
    for &at in &deaths {
        assert!(
            at >= rb.dead_after,
            "a lease cannot expire before one full window has passed (at={at})"
        );
    }

    let huge_window = run_sim(
        FaultPlan::quiet(11).with_wedge(6, 1 << 40),
        synthetic_cfg(
            60,
            RobustnessConfig {
                dead_after: 1 << 40, // longer than the run
                ..chaos_rb()
            },
            None,
        ),
        Box::new(Synthetic),
    );
    assert_eq!(
        huge_window.scheduler.workers_dead, 0,
        "a window longer than the run never expires"
    );

    let unsupervised = run_sim(
        FaultPlan::quiet(11).with_wedge(6, 1 << 40),
        synthetic_cfg(
            60,
            RobustnessConfig {
                supervise: false,
                ..chaos_rb()
            },
            None,
        ),
        Box::new(Synthetic),
    );
    assert_eq!(unsupervised.scheduler.workers_dead, 0);
    assert!(
        supervised.completed("point") > unsupervised.completed("point"),
        "supervision recovered throughput: supervised={} unsupervised={}",
        supervised.completed("point"),
        unsupervised.completed("point")
    );
}

/// Invariant 4 — quarantine-after-K is honored: with every incarnation
/// wedging immediately and a respawn budget of 2, each worker slot is
/// declared dead exactly 3 times (original + 2 respawns), respawned
/// exactly twice, then quarantined — and the scheduler survives running
/// with every worker quarantined, rejecting stranded queue entries.
#[test]
fn quarantine_after_k_respawns() {
    // Moderate per-point odds with a *finite* wedge: 2 000-point scans
    // wedge near-certainly, 20-point highs rarely — and a worker that
    // does wedge on the top-priority level (where no interrupt is ever
    // sent, so the lease cannot observe it) resumes after 6 ms and gets
    // caught on its next scan instead of stalling the test.
    let plan = FaultPlan::quiet(23).with_wedge(2_000, 14_400_000);
    let rb = RobustnessConfig {
        max_respawns: 2,
        ..chaos_rb()
    };
    let r = run_sim(plan, synthetic_cfg(120, rb, None), Box::new(Synthetic));

    let n = N_WORKERS as u64;
    assert_eq!(
        r.scheduler.workers_dead,
        3 * n,
        "each slot: original death + 2 respawned deaths"
    );
    assert_eq!(r.scheduler.workers_respawned, 2 * n, "budget = 2 per slot");
    assert_eq!(r.scheduler.workers_quarantined, n, "every slot quarantined");
    assert!(
        r.scheduler.rejected_orphaned > 0,
        "stranded queue entries were rejected, not leaked"
    );
}

/// Invariant 5 — determinism of the recovery trace: two runs with the
/// same seeds produce byte-identical fault-decision traces, identical
/// recovery event sequences (panic/death/respawn/sweep, with identical
/// virtual timestamps), identical recovery counters, and identical
/// captured panic messages.
#[test]
fn recovery_trace_is_deterministic() {
    fn chaos_run() -> RunReport {
        let (engine, table, oids) = setup_bank();
        let plan = FaultPlan::quiet(5)
            .with_txn_panic_ppm(25_000)
            .with_latch_panic_ppm(800)
            .with_wedge(8, 24_000_000);
        let mut cfg = bank_cfg(&engine, 60, chaos_rb());
        // Latch traffic would evict the (rare) recovery events from the
        // bounded rings; keep the trace to the lifecycle.
        cfg.trace = Some(TraceSession::new(TraceConfig::default().without_latch_events()));
        run_sim(plan, cfg, Box::new(Bank::new(engine, table, oids)))
    }

    let a = chaos_run();
    let b = chaos_run();

    assert_eq!(a.fault_trace, b.fault_trace, "fault decisions diverged");
    assert_eq!(a.panic_messages, b.panic_messages);
    assert_eq!(a.workers.panics, b.workers.panics);
    assert_eq!(a.scheduler.workers_dead, b.scheduler.workers_dead);
    assert_eq!(a.scheduler.workers_respawned, b.scheduler.workers_respawned);
    assert_eq!(a.scheduler.workers_quarantined, b.scheduler.workers_quarantined);
    assert_eq!(a.scheduler.orphans_aborted, b.scheduler.orphans_aborted);
    assert_eq!(a.completed("deposit"), b.completed("deposit"));

    let recovery_events = |r: &RunReport| -> Vec<(u64, TraceEvent)> {
        r.trace
            .as_ref()
            .expect("trace session installed")
            .records
            .iter()
            .filter(|rec| {
                matches!(
                    rec.event,
                    TraceEvent::TxnPanic { .. }
                        | TraceEvent::WorkerDead { .. }
                        | TraceEvent::WorkerRespawn { .. }
                        | TraceEvent::OrphanSweep { .. }
                )
            })
            .map(|rec| (rec.ts, rec.event))
            .collect()
    };
    let ea = recovery_events(&a);
    assert!(!ea.is_empty(), "chaos produced recovery events");
    assert!(
        ea.iter().any(|(_, e)| matches!(e, TraceEvent::TxnPanic { .. })),
        "trace carries contained panics"
    );
    assert!(
        ea.iter().any(|(_, e)| matches!(e, TraceEvent::WorkerDead { .. })),
        "trace carries lease expiries"
    );
    assert_eq!(ea, recovery_events(&b), "recovery trajectories diverged");
}
