//! Property-based tests (proptest) on the core data structures and
//! invariants: histogram accuracy, MVCC snapshot semantics vs a model,
//! key-packing injectivity, log round trips, and queue order.

use proptest::prelude::*;

use preemptdb::sched::Histogram;
use preemptdb::{Engine, EngineConfig, IsolationLevel};

// ---- Histogram vs an exact reference ----

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recorded percentiles stay within the histogram's ~3.2% relative
    /// error bound of an exact computation, at every percentile.
    #[test]
    fn histogram_percentiles_are_accurate(
        mut values in prop::collection::vec(0u64..u64::MAX >> 8, 1..400),
        p in 0.0f64..=100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p);
        let got = h.percentile(p);
        // Bucket lower bound: got <= exact, within one bucket width.
        prop_assert!(got <= exact);
        let bound = (exact as f64) * (1.0 - 1.0 / 32.0) - 1.0;
        prop_assert!(
            (got as f64) >= bound.floor(),
            "got {got}, exact {exact}"
        );
    }

    /// Regression pin for the documented error bound (the header once
    /// claimed ~1.5 %): a reported percentile is the bucket lower bound,
    /// which undershoots the recorded value by strictly less than 1/32
    /// (≈ 3.2 %) — and is exact below 32.
    #[test]
    fn histogram_single_value_error_is_under_one_32nd(v in 1u64..u64::MAX) {
        let mut h = Histogram::new();
        h.record(v);
        let got = h.percentile(50.0);
        prop_assert!(got <= v);
        prop_assert!(
            (v - got) as u128 * 32 < v as u128,
            "bucket lower bound {got} undershoots {v} by >= 1/32"
        );
        if v < 32 {
            prop_assert_eq!(got, v, "values below one octave are exact");
        }
    }

    /// merge(a, b) is observationally the union of the two sample sets.
    #[test]
    fn histogram_merge_is_union(
        a in prop::collection::vec(0u64..1 << 48, 0..200),
        b in prop::collection::vec(0u64..1 << 48, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.min(), hu.min());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(ha.percentile(p), hu.percentile(p));
        }
    }

    /// Geomean matches a direct computation within float tolerance.
    #[test]
    fn histogram_geomean_is_correct(
        values in prop::collection::vec(1u64..1 << 40, 1..100),
    ) {
        let mut h = Histogram::new();
        let mut log_sum = 0.0f64;
        for &v in &values {
            h.record(v);
            log_sum += (v as f64).ln();
        }
        let expected = (log_sum / values.len() as f64).exp();
        let got = h.geomean();
        prop_assert!(
            (got - expected).abs() / expected < 1e-9,
            "got {got}, expected {expected}"
        );
    }
}

// ---- MVCC vs a sequential model ----

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Update { slot: u8, val: u8 },
    Delete { slot: u8 },
    ReadCheck { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Insert),
        (any::<u8>(), any::<u8>()).prop_map(|(slot, val)| Op::Update { slot, val }),
        any::<u8>().prop_map(|slot| Op::Delete { slot }),
        any::<u8>().prop_map(|slot| Op::ReadCheck { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequentially-committed transactions over the MVCC engine agree
    /// with a plain map model at every step, including within-transaction
    /// read-your-writes; each op sequence runs as a chain of small
    /// transactions.
    #[test]
    fn mvcc_matches_sequential_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let engine = Engine::new(EngineConfig::default());
        let table = engine.create_table("prop");
        let mut model: Vec<Option<u8>> = Vec::new(); // slot -> value
        let mut oids: Vec<u64> = Vec::new();

        for chunk in ops.chunks(5) {
            let mut tx = engine.begin(IsolationLevel::SnapshotIsolation);
            let mut model_txn = model.clone();
            for op in chunk {
                match *op {
                    Op::Insert(v) => {
                        let oid = tx.insert(&table, &[v]).unwrap();
                        oids.push(oid);
                        model_txn.push(Some(v));
                    }
                    Op::Update { slot, val } => {
                        if model_txn.is_empty() { continue; }
                        let s = slot as usize % model_txn.len();
                        if model_txn[s].is_some() {
                            tx.update(&table, oids[s], &[val]).unwrap();
                            model_txn[s] = Some(val);
                        }
                    }
                    Op::Delete { slot } => {
                        if model_txn.is_empty() { continue; }
                        let s = slot as usize % model_txn.len();
                        if model_txn[s].is_some() {
                            tx.delete(&table, oids[s]).unwrap();
                            model_txn[s] = None;
                        }
                    }
                    Op::ReadCheck { slot } => {
                        if model_txn.is_empty() { continue; }
                        let s = slot as usize % model_txn.len();
                        let got = tx.read(&table, oids[s]).map(|p| p[0]);
                        prop_assert_eq!(got, model_txn[s], "slot {} mid-txn", s);
                    }
                }
            }
            tx.commit().unwrap();
            model = model_txn;
        }

        // Final audit from a fresh snapshot.
        let mut audit = engine.begin_si();
        for (s, expected) in model.iter().enumerate() {
            let got = audit.read(&table, oids[s]).map(|p| p[0]);
            prop_assert_eq!(got, *expected, "slot {} post-commit", s);
        }
        audit.commit().unwrap();
    }

    /// Snapshot stability: a reader that begins before a batch of updates
    /// keeps seeing the old values afterwards, for arbitrary interleaving
    /// choices.
    #[test]
    fn mvcc_snapshots_are_stable(
        initial in prop::collection::vec(any::<u8>(), 1..30),
        updates in prop::collection::vec((any::<u8>(), any::<u8>()), 0..60),
    ) {
        let engine = Engine::new(EngineConfig::default());
        let table = engine.create_table("snap");
        let mut setup = engine.begin_si();
        let oids: Vec<u64> = initial
            .iter()
            .map(|&v| setup.insert(&table, &[v]).unwrap())
            .collect();
        setup.commit().unwrap();

        let mut reader = engine.begin_si();
        // Touch one record to pin expectations before the churn.
        let _ = reader.read(&table, oids[0]);

        for (slot, val) in &updates {
            let s = *slot as usize % oids.len();
            let mut w = engine.begin_si();
            // May conflict with nothing (sequential); must succeed.
            w.update(&table, oids[s], &[*val]).unwrap();
            w.commit().unwrap();
        }

        for (s, &v) in initial.iter().enumerate() {
            let got = reader.read(&table, oids[s]).map(|p| p[0]);
            prop_assert_eq!(got, Some(v), "reader slot {}", s);
        }
        reader.commit().unwrap();
    }
}

// ---- Key packing ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TPC-C key packing is injective over the valid domain.
    #[test]
    fn tpcc_keys_are_injective(
        a in (1u64..=255, 1u64..=255, 1u64..=65_535, 1u64..=1_000_000, 1u64..=255),
        b in (1u64..=255, 1u64..=255, 1u64..=65_535, 1u64..=1_000_000, 1u64..=255),
    ) {
        use preemptdb::workloads::tpcc::schema as k;
        let ka = (
            k::dist_key(a.0, a.1),
            k::cust_key(a.0, a.1, a.2),
            k::order_key(a.0, a.1, a.3),
            k::order_line_key(a.0, a.1, a.3, a.4),
            k::stock_key(a.0, a.3),
        );
        let kb = (
            k::dist_key(b.0, b.1),
            k::cust_key(b.0, b.1, b.2),
            k::order_key(b.0, b.1, b.3),
            k::order_line_key(b.0, b.1, b.3, b.4),
            k::stock_key(b.0, b.3),
        );
        if a != b {
            // At least the tuple of keys must differ; and individually,
            // equal keys imply equal inputs for their fields.
            if a.0 == b.0 && a.1 == b.1 {
                if a.2 != b.2 {
                    prop_assert_ne!(ka.1, kb.1);
                }
                if a.3 != b.3 {
                    prop_assert_ne!(ka.2, kb.2);
                }
            } else {
                prop_assert_ne!(ka.0, kb.0);
            }
        } else {
            prop_assert_eq!(ka, kb);
        }
    }
}

// ---- Redo log round trip ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn redo_log_round_trips(
        entries in prop::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)),
            1..20,
        ),
        commit_ts in any::<u64>(),
    ) {
        use preemptdb::mvcc::log;
        use preemptdb::mvcc::TableId;
        // Isolate from other tests' context-local buffers by running on a
        // fresh context (each proptest case reuses the thread).
        log::discard();
        let mgr = log::LogManager::new(true);
        for (txid, table, oid, payload) in &entries {
            log::append_redo(*txid, TableId(*table), *oid, payload);
        }
        log::flush_commit(&mgr, 7, commit_ts);
        let chunks = mgr.captured();
        prop_assert_eq!(chunks.len(), 1);
        let parsed = log::parse_chunk(&chunks[0]).unwrap();
        prop_assert_eq!(parsed.len(), entries.len() + 1);
        for (got, (txid, table, oid, payload)) in parsed.iter().zip(&entries) {
            prop_assert_eq!(got.txid, *txid);
            prop_assert_eq!(got.table, *table);
            prop_assert_eq!(got.oid, *oid);
            prop_assert_eq!(&got.payload, payload);
        }
        let marker = parsed.last().unwrap();
        prop_assert_eq!(marker.table, log::COMMIT_MARKER);
        prop_assert_eq!(marker.oid, commit_ts);
    }
}

// ---- Request queue order ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved pushes and pops preserve FIFO order and capacity.
    #[test]
    fn request_queue_is_fifo(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        use preemptdb::sched::{Request, RequestQueue, WorkOutcome};
        let q = RequestQueue::new(16);
        let mut model = std::collections::VecDeque::new();
        let mut seq = 0u64;
        for push in ops {
            if push {
                let r = Request::new("p", 0, seq, WorkOutcome::default);
                match q.push(r) {
                    Ok(()) => {
                        prop_assert!(model.len() < 16);
                        model.push_back(seq);
                    }
                    Err(_) => prop_assert_eq!(model.len(), 16),
                }
                seq += 1;
            } else {
                let got = q.pop().map(|r| r.created_at);
                prop_assert_eq!(got, model.pop_front());
            }
        }
    }
}
