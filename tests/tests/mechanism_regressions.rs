//! Regression tests for the correctness mechanisms of paper §4: each test
//! demonstrates both that the mechanism works *and* (where feasible) that
//! removing it breaks the system in exactly the way the paper warns.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use preemptdb::context::nonpreempt::NonPreemptGuard;
use preemptdb::context::switch::{switch_to, Context};
use preemptdb::context::tcb::{self, CtxState, Tcb};
use preemptdb::mvcc::{log as redo_log, TableId};
use preemptdb::uintr::{UintrReceiver, UipiSender};

/// §4.4's same-worker latch deadlock: context 1 is preempted while
/// holding a latch; context 2 on the *same* worker then spins on it.
/// With the non-preemptible region omitted, the latch's spin bound must
/// diagnose the deadlock (no lock ordering can prevent it).
#[test]
fn missing_nonpreemptible_region_deadlocks_and_is_diagnosed() {
    let latch = Arc::new(preemptdb::mvcc::Latch::new());

    // Context 1: takes the latch WITHOUT a non-preemptible region, then
    // gets "preempted" (switches away mid-critical-section).
    let root = tcb::root_ptr() as usize;
    let l1 = latch.clone();
    let ctx1 = Context::with_default_stack("holder", move || {
        let _guard = l1.write();
        // Preempted while holding the latch (the bug the paper's
        // non-preemptible regions exist to prevent).
        switch_to(unsafe { &*(root as *const Tcb) });
        // Never resumed in this test.
    })
    .unwrap();
    ctx1.resume(); // runs until the switch; latch is now held

    // Context 2 (same worker thread): tries to take the latch. The
    // holder can never run again while we spin — a same-thread deadlock.
    // The spin bound converts the silent hang into a diagnosed panic,
    // which the context machinery captures as a poisoned context.
    let l2 = latch.clone();
    let ctx2 = Context::with_default_stack("spinner", move || {
        let _guard = l2.write(); // must panic via the spin bound
    })
    .unwrap();
    ctx2.resume();

    assert_eq!(ctx2.tcb().state(), CtxState::Poisoned);
    let msg = ctx2.tcb().panic_message().expect("captured diagnosis");
    assert!(
        msg.contains("same-thread deadlock"),
        "diagnostic names the failure: {msg}"
    );
    assert!(latch.is_held(), "the holder still owns the latch");
}

/// The same pattern, protected the way the engine does it: the region
/// defers the preemption, so the latch is released before the switch.
#[test]
fn nonpreemptible_region_prevents_the_deadlock() {
    let latch = Arc::new(preemptdb::mvcc::Latch::new());
    let deferred = Arc::new(AtomicU64::new(0));

    let l1 = latch.clone();
    let d1 = deferred.clone();
    let mut rx = UintrReceiver::new();
    rx.register_handler(move |_| {
        // Would-be preemption point handler; in the engine this switches
        // contexts. Here we only count deliveries.
        d1.fetch_add(1, Ordering::Relaxed);
    });
    let tx = UipiSender::new(rx.upid(), 1);

    {
        let _np = NonPreemptGuard::enter();
        let _guard = l1.write();
        tx.send();
        // Delivery attempt inside the critical section defers.
        assert_eq!(rx.poll(), 0, "deferred while latched");
        assert_eq!(deferred.load(Ordering::Relaxed), 0);
    }
    // After the region (and latch) are released, delivery proceeds.
    assert_eq!(rx.poll(), 1);
    assert_eq!(deferred.load(Ordering::Relaxed), 1);
    assert!(!latch.is_held());
}

/// §4.3's CLS-necessity demonstration: two transaction contexts on one
/// worker write redo entries "concurrently" (interleaved by preemption).
/// With CLS (the engine's actual log buffer), both logs stay coherent.
#[test]
fn cls_keeps_interleaved_redo_logs_coherent() {
    let mgr = Arc::new(preemptdb::mvcc::log::LogManager::new(true));
    let root = tcb::root_ptr() as usize;

    // Transaction A runs on the worker's main context (txid 1).
    redo_log::append_redo(1, TableId(0), 11, b"A-first");

    // Preemption: transaction B runs on the second context (txid 2),
    // writes, yields back mid-transaction, A writes again, B finishes.
    let m = mgr.clone();
    let ctx_b = Context::with_default_stack("txn-b", move || {
        redo_log::append_redo(2, TableId(0), 21, b"B-first");
        switch_to(unsafe { &*(root as *const Tcb) });
        redo_log::append_redo(2, TableId(0), 22, b"B-second");
        redo_log::flush_commit(&m, 2, 200);
    })
    .unwrap();

    ctx_b.resume(); // B writes its first entry
    redo_log::append_redo(1, TableId(0), 12, b"A-second");
    ctx_b.resume(); // B finishes and flushes
    redo_log::flush_commit(&mgr, 1, 100);

    let chunks = mgr.captured();
    assert_eq!(chunks.len(), 2);
    for chunk in &chunks {
        let entries = preemptdb::mvcc::log::parse_chunk(chunk).expect("well-formed chunk");
        let txid = entries[0].txid;
        assert!(
            entries.iter().all(|e| e.txid == txid),
            "no foreign entries interleaved: {entries:?}"
        );
        // Per-transaction order is preserved.
        let payloads: Vec<&[u8]> = entries[..entries.len() - 1]
            .iter()
            .map(|e| e.payload.as_slice())
            .collect();
        if txid == 1 {
            assert_eq!(payloads, vec![b"A-first".as_ref(), b"A-second".as_ref()]);
        } else {
            assert_eq!(payloads, vec![b"B-first".as_ref(), b"B-second".as_ref()]);
        }
    }
}

/// Counter-demonstration: the same interleaving through a plain
/// `thread_local!` buffer corrupts the log — transaction A's flush
/// carries B's entries. This is the §4.3 bug CLS exists to fix.
#[test]
fn thread_local_buffer_corrupts_interleaved_logs() {
    thread_local! {
        static BROKEN_BUF: std::cell::RefCell<Vec<(u64, Vec<u8>)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    fn broken_append(txid: u64, payload: &[u8]) {
        BROKEN_BUF.with(|b| b.borrow_mut().push((txid, payload.to_vec())));
    }
    fn broken_flush(txid: u64) -> Vec<(u64, Vec<u8>)> {
        BROKEN_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()))
            .into_iter()
            .inspect(|_| {
                let _ = txid;
            })
            .collect()
    }

    let root = tcb::root_ptr() as usize;
    broken_append(1, b"A-first");
    let flushed_b: Rc<Cell<usize>> = Rc::new(Cell::new(0));
    let fb = flushed_b.clone();
    // Single-threaded: smuggle the Rc through a raw pointer.
    let fb_ptr = Rc::into_raw(fb) as usize;
    let ctx_b = Context::with_default_stack("txn-b-broken", move || {
        broken_append(2, b"B-first");
        switch_to(unsafe { &*(root as *const Tcb) });
        broken_append(2, b"B-second");
        let chunk = broken_flush(2);
        // SAFETY: the Rc outlives the context (held by the test).
        let fb = unsafe { Rc::from_raw(fb_ptr as *const Cell<usize>) };
        fb.set(chunk.len());
        let _ = Rc::into_raw(fb);
    })
    .unwrap();

    ctx_b.resume();
    broken_append(1, b"A-second");
    ctx_b.resume();
    let chunk_a = broken_flush(1);

    // B's flush swept up A's entries (and vice versa): corruption.
    let b_len = flushed_b.get();
    assert!(
        b_len != 2 || chunk_a.iter().any(|(t, _)| *t != 1),
        "plain TLS must corrupt: B flushed {b_len} entries, A's chunk: {chunk_a:?}"
    );
    // Clean up the smuggled Rc.
    unsafe { Rc::decrement_strong_count(fb_ptr as *const Cell<usize>) };
}

/// §4.2's atomic active switch: a delivery attempt landing inside the
/// switch window is deferred (the Algorithm 1 instruction-pointer check
/// analog), and the pending interrupt survives to the next point.
#[test]
fn delivery_during_switch_window_is_deferred() {
    let mut rx = UintrReceiver::new();
    let fired = Arc::new(AtomicU64::new(0));
    let f = fired.clone();
    rx.register_handler(move |_| {
        f.fetch_add(1, Ordering::Relaxed);
    });
    let tx = UipiSender::new(rx.upid(), 0);
    tx.send();

    preemptdb::context::switch::set_switch_in_progress(true);
    assert_eq!(rx.poll(), 0, "mid-switch: deferred");
    assert_eq!(fired.load(Ordering::Relaxed), 0);
    assert!(tcb::with_current(|t| t.has_deferred()));
    preemptdb::context::switch::set_switch_in_progress(false);

    assert_eq!(rx.poll(), 1, "delivered after the window closes");
    assert_eq!(fired.load(Ordering::Relaxed), 1);
}

/// End-to-end passive preemption: the uintr handler performs a real
/// context switch into a drain context and back, resuming the preempted
/// computation exactly where it paused (Figure 6).
#[test]
fn handler_driven_context_switch_round_trip() {
    struct Shared {
        drain: Cell<*const Tcb>,
        log: std::cell::RefCell<Vec<&'static str>>,
    }
    let shared = Rc::new(Shared {
        drain: Cell::new(std::ptr::null()),
        log: std::cell::RefCell::new(Vec::new()),
    });

    let s = shared.clone();
    let s_ptr = Rc::as_ptr(&s) as usize;
    let mut rx = UintrReceiver::new();
    rx.register_handler(move |_| {
        // The handler body = the paper's uintr_handler_helper: perform
        // the passive switch into the preemptive context.
        let sh = unsafe { &*(s_ptr as *const Shared) };
        sh.log.borrow_mut().push("handler");
        switch_to(unsafe { &*sh.drain.get() });
        sh.log.borrow_mut().push("handler-return");
    });
    let tx = UipiSender::new(rx.upid(), 1);

    let root = tcb::root_ptr() as usize;
    let s2 = shared.clone();
    let s2_ptr = Rc::as_ptr(&s2) as usize;
    let drain = Context::with_default_stack("drain", move || loop {
        let sh = unsafe { &*(s2_ptr as *const Shared) };
        sh.log.borrow_mut().push("high-priority-txn");
        switch_to(unsafe { &*(root as *const Tcb) });
    })
    .unwrap();
    shared.drain.set(drain.tcb_ptr());

    // The "long scan": interrupted at its second preemption point.
    shared.log.borrow_mut().push("scan-part-1");
    tx.send();
    rx.poll(); // preemption point -> handler -> drain -> back
    shared.log.borrow_mut().push("scan-part-2");

    assert_eq!(
        *shared.log.borrow(),
        vec![
            "scan-part-1",
            "handler",
            "high-priority-txn",
            "handler-return",
            "scan-part-2"
        ]
    );
    assert_eq!(drain.tcb().state(), CtxState::Suspended);
}
