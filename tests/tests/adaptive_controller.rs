//! End-to-end tests for the closed-loop starvation-threshold controller
//! ([`Policy::PreemptiveAdaptive`], ISSUE 4 tentpole):
//!
//! * determinism — two same-seed adaptive runs produce byte-identical
//!   threshold trajectories, equal reports, and byte-identical merged
//!   traces (the `ControllerDecision` events included);
//! * convergence — under a synthetic mid-run load shift the controller
//!   lands on a threshold whose post-shift Q2 throughput is no worse
//!   than the worst static's while keeping the high-priority p99 within
//!   its bound;
//! * composition with robustness — a 100 % interrupt outage confined to
//!   the opening phase (via [`FaultPlan::with_drop_before`]) degrades
//!   the scheduler exactly once, and the rolling degradation window
//!   re-arms it once the outage ends.

use preempt_faults::FaultPlan;
use preemptdb::sched::{
    run, ControllerConfig, DriverConfig, Policy, Request, RobustnessConfig, RunReport, Runtime,
    WorkOutcome, WorkloadFactory,
};
use preemptdb::trace::{TraceConfig, TraceEvent, TraceSession};
use preemptdb::workloads::LoadShift;
use preemptdb::SimConfig;

/// Long low-priority "scans" and short high-priority "points", as in the
/// fault-injection and trace tests: scans sit in preemption-point loops
/// long enough that threshold choices visibly trade Q2-style progress
/// against point latency.
struct Counted {
    scan_iters: u64,
}

impl WorkloadFactory for Counted {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let iters = self.scan_iters;
        Some(Request::new("scan", 0, now, move || {
            for _ in 0..iters {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, move || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

const N_WORKERS: usize = 4;
const MS: u64 = 2_400_000; // one virtual millisecond at the 2.4 GHz time base

/// Controller sized for short test runs: 1 ms windows (so a 40 ms run
/// evaluates ~40 times) and a sample floor the 8-request batches can
/// actually meet. `floor_decay = 1.0` keeps short trajectories stable
/// (no re-probing below a violated threshold inside the test horizon).
fn test_controller() -> ControllerConfig {
    ControllerConfig {
        window_cycles: MS,
        min_high_samples: 4,
        floor_decay: 1.0,
        ..ControllerConfig::default_2_4ghz()
    }
}

fn small_cfg(policy: Policy, duration_ms: u64, trace: Option<TraceSession>) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 8,
        arrival_interval: MS,
        duration: duration_ms * MS,
        always_interrupt: false,
        robustness: RobustnessConfig::default(),
        recovery: Default::default(),
        trace,
        metrics: None,
        prov: None,
    }
}

fn run_counted(cfg: DriverConfig, faults: Option<FaultPlan>) -> RunReport {
    let sim = SimConfig {
        faults,
        ..SimConfig::default()
    };
    run(
        Runtime::Simulated(sim),
        cfg,
        Box::new(Counted { scan_iters: 2_000 }),
    )
}

/// Same seed, same config → byte-identical threshold trajectory, equal
/// controller reports, and a byte-identical merged trace that records
/// one `ControllerDecision` per evaluation.
#[test]
fn adaptive_runs_are_deterministic() {
    let adaptive = Policy::PreemptiveAdaptive {
        controller: test_controller(),
    };
    let go = || {
        run_counted(
            small_cfg(adaptive, 40, Some(TraceSession::new(TraceConfig::default()))),
            None,
        )
    };
    let a = go();
    let b = go();

    let ra = a.controller.as_ref().expect("adaptive run reports");
    let rb = b.controller.as_ref().expect("adaptive run reports");
    assert!(
        ra.trajectory.len() >= 20,
        "a 40 ms run with 1 ms windows must evaluate many times, got {}",
        ra.trajectory.len()
    );
    assert_eq!(
        a.scheduler.controller_evals,
        ra.trajectory.len() as u64,
        "every evaluation appears in the trajectory"
    );
    assert_eq!(
        ra.trajectory_text(),
        rb.trajectory_text(),
        "same-seed trajectories must be byte-identical"
    );
    assert_eq!(ra.final_threshold, rb.final_threshold);

    let ta = a.trace.as_ref().expect("session installed");
    let tb = b.trace.as_ref().expect("session installed");
    assert_eq!(ta.dropped, 0, "rings must not overflow at this scale");
    assert_eq!(
        ta.canonical_text(),
        tb.canonical_text(),
        "same-seed merged traces must be byte-identical"
    );
    let decisions = ta
        .records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ControllerDecision { .. }))
        .count() as u64;
    assert_eq!(
        decisions, a.scheduler.controller_evals,
        "one ControllerDecision trace event per evaluation"
    );
}

/// The load-shift scenario used by the convergence test: the
/// high-priority stream is capped at 1 request/tick for the first half,
/// then uncapped. Reports for a truncated run are byte-identical
/// prefixes of the full run, so `full − prefix` isolates the post-shift
/// regime exactly (same technique as the `fig_adaptive` bench).
struct ShiftRun {
    full: RunReport,
    prefix: RunReport,
}

const SHIFT_MS: u64 = 25;
const SETTLE_MS: u64 = 10;
const DURATION_MS: u64 = 60;

fn run_shifted(policy: Policy) -> ShiftRun {
    let go = |duration_ms: u64| {
        let factory = LoadShift::new(
            Counted { scan_iters: 2_000 },
            SHIFT_MS * MS,
            1,
            u32::MAX,
        );
        run(
            Runtime::Simulated(SimConfig::default()),
            small_cfg(policy, duration_ms, None),
            Box::new(factory),
        )
    };
    ShiftRun {
        full: go(DURATION_MS),
        prefix: go(SHIFT_MS + SETTLE_MS),
    }
}

impl ShiftRun {
    /// Post-shift scan completions (the synthetic stand-in for Q2).
    fn post_scans(&self) -> u64 {
        self.full
            .completed("scan")
            .saturating_sub(self.prefix.completed("scan"))
    }

    /// Post-shift high-priority p99, cycles.
    fn post_p99(&self) -> u64 {
        let lat = |r: &RunReport| {
            r.metrics
                .kind("point")
                .map(|m| m.latency.clone())
                .unwrap_or_default()
        };
        lat(&self.full).subtracting(&lat(&self.prefix)).percentile(99.0)
    }
}

/// Under the load shift, the adaptive run's post-shift scan throughput
/// is at least the worst static threshold's, while its post-shift
/// high-priority p99 stays within the controller's bound. (Statics are
/// stranded: a low threshold over-protects scans at the points' expense
/// after the shift; `L_max = 1` gives up scan protection entirely.)
#[test]
fn adaptive_converges_under_load_shift() {
    let ctl = test_controller();
    let worst_static_scans = [ctl.min_threshold, 1.0]
        .into_iter()
        .map(|t| {
            run_shifted(Policy::Preemptive {
                starvation_threshold: t,
            })
            .post_scans()
        })
        .min()
        .expect("two static runs");

    let adaptive = run_shifted(Policy::PreemptiveAdaptive { controller: ctl });
    let report = adaptive
        .full
        .controller
        .as_ref()
        .expect("adaptive run reports");
    assert!(
        report.trajectory.len() as u64 >= (DURATION_MS - 5),
        "windows evaluated across the whole run, got {}",
        report.trajectory.len()
    );

    let scans = adaptive.post_scans();
    assert!(
        scans >= worst_static_scans,
        "adaptive post-shift scans {scans} fell below the worst static's {worst_static_scans}"
    );
    let p99 = adaptive.post_p99();
    assert!(
        p99 <= ctl.high_p99_bound,
        "adaptive post-shift point p99 {p99} cycles exceeds the {} cycle bound",
        ctl.high_p99_bound
    );
}

/// A total interrupt outage confined to the first 20 ms (every
/// user-interrupt send dropped, then none) must downgrade the scheduler
/// to plain wakes exactly once, and the rolling degradation window must
/// re-arm it after the outage — the run ends upgraded, with every
/// downgrade matched by an upgrade.
#[test]
fn phased_outage_degrades_once_and_rearms() {
    let outage_ms = 20;
    let plan = FaultPlan::quiet(7)
        .with_drop_ppm(1_000_000)
        .with_drop_before(outage_ms * MS);
    let r = run_counted(small_cfg(Policy::preemptdb(), 60, None), Some(plan));

    let faults = r.faults.as_ref().expect("ran under a fault plan");
    assert!(faults.uipi_dropped > 0, "the outage actually dropped sends");
    assert!(
        r.scheduler.watchdog_resends > 0,
        "the watchdog fought the outage before degrading"
    );
    assert!(
        r.scheduler.policy_downgrades >= 1,
        "a 100% outage must trip the degradation window"
    );
    assert_eq!(
        r.scheduler.policy_upgrades, r.scheduler.policy_downgrades,
        "the rolling window must re-arm after the outage ends"
    );
    assert!(
        r.completed("point") > 0,
        "high-priority work completed through outage and recovery"
    );
}
