//! Observability-plane invariants (ISSUE 5 tentpole): the lock-free
//! per-worker metrics registry must agree *exactly* with every
//! pre-existing accounting plane it shadows —
//!
//! * per-kind transaction counts and latency histograms bit-for-bit
//!   equal to [`RunReport::metrics`] (same bucket math, same sites);
//! * scheduler/worker counters equal to [`SchedulerStats`] and
//!   [`WorkerTotals`];
//! * the adaptive controller, which now reads per-window deltas of the
//!   registry's sensor plane, byte-identical whether the registry came
//!   from the driver config or the scheduler's private fallback;
//! * a disabled registry costing exactly one relaxed load per emit;
//! * a threaded run serving `GET /metrics` that round-trips through the
//!   strict Prometheus parser with the delivery, starvation,
//!   degradation, fault, and SLO burn-rate series present.

use preempt_faults::FaultPlan;
use preemptdb::metrics::{
    self, Counter, MetricsConfig, MetricsRegistry, SloSpec,
};
use preemptdb::sched::{
    clock, cross_check_registry, run, DriverConfig, Policy, Request, RunReport, Runtime,
    WorkOutcome, WorkloadFactory,
};
use preemptdb::SimConfig;

/// The canonical synthetic mix: long low-priority "scans" and short
/// high-priority "points".
struct Synthetic;
impl WorkloadFactory for Synthetic {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("scan", 0, now, || {
            for _ in 0..5_000 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
    fn make_high(&mut self, now: u64) -> Option<Request> {
        Some(Request::new("point", 1, now, || {
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

fn cfg(policy: Policy, registry: Option<MetricsRegistry>) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: 4,
        shards: 1,
        queue_caps: vec![1, 4],
        batch_size: 16,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: 120_000_000,       // 50 ms
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: registry,
        prov: None,
    }
}

fn registry_with_slo() -> MetricsRegistry {
    MetricsRegistry::new(MetricsConfig {
        slos: vec![SloSpec {
            kind: "point",
            latency_bound_cycles: 240_000, // 100 µs at 2.4 GHz
            target_ppm: 10_000,
        }],
        ..MetricsConfig::default()
    })
}

fn run_sim(policy: Policy, registry: Option<MetricsRegistry>) -> RunReport {
    run(
        Runtime::Simulated(SimConfig::default()),
        cfg(policy, registry),
        Box::new(Synthetic),
    )
}

/// The registry's per-kind series equal the legacy report's, histogram
/// percentiles included — one seeded run, two accounting planes.
#[test]
fn registry_snapshot_matches_legacy_metrics() {
    let report = run_sim(Policy::preemptdb(), Some(registry_with_slo()));
    cross_check_registry(&report).expect("planes agree");
    let snap = report.metrics_snapshot.as_ref().expect("snapshot");
    // The run actually exercised the interesting series.
    assert!(report.completed("point") > 100);
    assert!(snap.counter(Counter::UintrDelivered) > 0);
    assert!(snap.counter(Counter::SchedEnterLevel) > 0);
    assert_eq!(
        snap.counter(Counter::SchedEnterLevel),
        snap.counter(Counter::SchedLeaveLevel),
        "every preemptive level entered is left"
    );
    for (kind, m) in report.metrics.kinds() {
        let k = snap.kind(kind).expect("kind present in registry");
        assert_eq!(m.completed, k.completed, "{kind} completed");
        assert_eq!(m.latency.count(), k.latency.count(), "{kind} samples");
        for p in [25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                m.latency.percentile(p),
                k.latency.percentile(p),
                "{kind} latency p{p}"
            );
            assert_eq!(
                m.sched_latency.percentile(p),
                k.sched_latency.percentile(p),
                "{kind} sched latency p{p}"
            );
        }
    }
}

/// Same invariant under an adversarial fault plan: drops, re-sends,
/// dispatch failures, and forced aborts all land in both planes equally.
#[test]
fn cross_plane_agreement_survives_fault_injection() {
    let sim = SimConfig {
        faults: Some(FaultPlan::lossy(7, 100_000, 20_000)),
        ..SimConfig::default()
    };
    let report = run(
        Runtime::Simulated(sim),
        cfg(Policy::preemptdb(), Some(registry_with_slo())),
        Box::new(Synthetic),
    );
    cross_check_registry(&report).expect("planes agree under faults");
    let snap = report.metrics_snapshot.as_ref().expect("snapshot");
    assert!(snap.counter(Counter::FaultsInjected) > 0, "plan injected");
    assert!(
        snap.counter(Counter::WatchdogResends) > 0,
        "drops forced watchdog re-sends"
    );
}

/// The controller reads the registry's sensor plane; whether that
/// registry was supplied by the config or created as the scheduler's
/// fallback must not change a single byte of the trajectory.
#[test]
fn adaptive_trajectory_identical_across_registry_sources() {
    let explicit = run_sim(Policy::preemptdb_adaptive(), Some(registry_with_slo()));
    let fallback = run_sim(Policy::preemptdb_adaptive(), None);
    let a = explicit.controller.expect("controller report");
    let b = fallback.controller.expect("controller report");
    assert!(a.trajectory_text().lines().count() > 1, "multiple windows");
    assert_eq!(a.trajectory_text(), b.trajectory_text());
    // The explicit run additionally exposes the controller series.
    let snap = explicit.metrics_snapshot.expect("snapshot");
    assert_eq!(
        snap.counter(Counter::ControllerEvals),
        explicit.scheduler.controller_evals
    );
    assert_eq!(
        snap.counter(Counter::ControllerRaises)
            + snap.counter(Counter::ControllerLowers)
            + snap.counter(Counter::ControllerHolds),
        snap.counter(Counter::ControllerEvals),
        "every evaluation is a raise, lower, or hold"
    );
    assert!(
        snap.gauge("starvation_threshold").is_some(),
        "final threshold gauge published"
    );
}

/// Metrics-off runs must not even allocate a snapshot: emits behind a
/// dead registry pointer are one relaxed load and out.
#[test]
fn static_run_without_registry_carries_no_snapshot() {
    let report = run_sim(Policy::preemptdb(), None);
    assert!(report.metrics_snapshot.is_none());
    assert!(report.completed("point") > 100, "run still executed");
}

/// Determinism of the metrics plane itself: two same-seed runs produce
/// identical registry snapshots (counter-for-counter, bucket-for-bucket).
#[test]
fn registry_snapshots_are_deterministic() {
    let a = run_sim(Policy::preemptdb(), Some(registry_with_slo()));
    let b = run_sim(Policy::preemptdb(), Some(registry_with_slo()));
    let (sa, sb) = (
        a.metrics_snapshot.expect("snapshot a"),
        b.metrics_snapshot.expect("snapshot b"),
    );
    assert_eq!(sa.counters, sb.counters, "counter plane deterministic");
    for (ka, kb) in sa.kinds.iter().zip(sb.kinds.iter()) {
        assert_eq!(ka.name, kb.name);
        assert_eq!(ka.latency.buckets, kb.latency.buckets, "{} buckets", ka.name);
        assert_eq!(
            ka.sched_latency.buckets, kb.sched_latency.buckets,
            "{} sched buckets",
            ka.name
        );
    }
    assert_eq!(
        sa.sensor_high_latency.buckets, sb.sensor_high_latency.buckets,
        "controller sensor plane deterministic"
    );
    assert_eq!(sa.slo_burn, sb.slo_burn, "burn rates deterministic");
    // The delivery-latency histogram is excluded: it is measured with
    // the real TSC even under the simulator, so its buckets vary run to
    // run while everything virtual-time stays bit-identical.
}

/// Threaded runtime: the run serves a live Prometheus endpoint whose
/// exposition round-trips through the strict parser with the required
/// operational series present.
#[test]
fn threaded_run_serves_parseable_prometheus() {
    let hz = clock::freq_hz();
    let registry = MetricsRegistry::new(MetricsConfig {
        serve: true,
        slos: vec![SloSpec {
            kind: "point",
            latency_bound_cycles: hz / 10_000,
            target_ppm: 10_000,
        }],
        sample_interval_ms: 10,
        ..MetricsConfig::default()
    });
    let mut c = cfg(Policy::preemptdb(), Some(registry.clone()));
    c.n_workers = 2;
    c.arrival_interval = hz / 1_000;
    c.duration = hz / 5; // 200 ms wall clock
    let worker = std::thread::spawn(move || run(Runtime::Threads, c, Box::new(Synthetic)));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let addr = loop {
        if let Some(a) = registry.bound_addr() {
            break a;
        }
        assert!(std::time::Instant::now() < deadline, "endpoint never bound");
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    let body = metrics::serve::scrape(addr, "/metrics").expect("mid-run scrape");
    let report = worker.join().expect("threaded run");

    let exp = metrics::parse_prometheus(&body).expect("valid exposition");
    metrics::validate_histograms(&exp).expect("histogram invariants");
    for series in [
        "preemptdb_uintr_delivered_total",
        "preemptdb_uintr_watchdog_resends_total",
        "preemptdb_starvation_skips_total",
        "preemptdb_delivery_degrades_total",
        "preemptdb_faults_injected_total",
        "preemptdb_uintr_delivery_latency_cycles_bucket",
    ] {
        assert!(
            exp.all(series).next().is_some(),
            "required series {series} missing"
        );
    }
    assert!(
        exp.value("preemptdb_slo_burn_rate", &[("kind", "point")]).is_some(),
        "burn-rate gauge missing"
    );
    // The final snapshot still agrees with the legacy planes after the
    // sampler and scrapes raced the workers.
    cross_check_registry(&report).expect("threaded planes agree");
}
