//! End-to-end assertions of the paper's evaluation *shapes* (§6) at test
//! scale: who wins, in what direction, under which regime. These are the
//! same runs the `preempt-bench` figures perform, shrunk to seconds.

use preemptdb::sched::{run, DriverConfig, Policy, RunReport, Runtime};
use preemptdb::workloads::{kinds, setup_mixed, MixedWorkload, TpccScale, TpchScale};
use preemptdb::SimConfig;

fn small_tpcc(warehouses: u64) -> TpccScale {
    TpccScale {
        warehouses,
        districts_per_wh: 4,
        customers_per_district: 100,
        items: 500,
        preloaded_orders: 10,
    }
}

fn small_tpch() -> TpchScale {
    // Q2 must stay *longer* than the scheduler's 1 ms low-queue refill
    // interval, or workers idle between Q2s and the "long transactions
    // monopolize the CPU" premise (paper §1) does not hold.
    TpchScale {
        parts: 12_000,
        suppliers: 200,
        suppliers_per_part: 4,
        nations: 25,
        regions: 5,
        sizes: 20,
        types: 10,
    }
}

fn run_policy(policy: Policy, workers: usize, duration_ms: u64, high_queue: usize) -> RunReport {
    let sim = SimConfig::default();
    let (_e, tpcc, tpch) = setup_mixed(
        workers as u64,
        Some(small_tpcc(workers as u64)),
        Some(small_tpch()),
        17,
    );
    let cfg = DriverConfig {
        policy,
        n_workers: workers,
        shards: 1,
        queue_caps: vec![1, high_queue],
        batch_size: workers * high_queue,
        arrival_interval: sim.us_to_cycles(1_000),
        duration: sim.ms_to_cycles(duration_ms),
        always_interrupt: false,
        robustness: Default::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    };
    let factory = MixedWorkload::new(tpcc, tpch, 23);
    run(Runtime::Simulated(sim), cfg, Box::new(factory))
}

/// Figure 10's headline: PreemptDB cuts high-priority latency by ~an
/// order of magnitude vs Wait at every percentile, Cooperative lands in
/// between on the tail, and Q2 is essentially unaffected.
#[test]
fn preemption_cuts_high_priority_latency() {
    let wait = run_policy(Policy::Wait, 8, 80, 4);
    let coop = run_policy(Policy::cooperative(), 8, 80, 4);
    let pre = run_policy(Policy::preemptdb(), 8, 80, 4);

    for r in [&wait, &coop, &pre] {
        assert!(r.completed(kinds::NEW_ORDER) > 200, "enough samples");
        assert!(r.completed(kinds::Q2) > 50);
    }

    for pct in [50.0, 90.0, 99.0] {
        let w = wait.latency_us(kinds::NEW_ORDER, pct);
        let p = pre.latency_us(kinds::NEW_ORDER, pct);
        assert!(
            p * 5.0 < w,
            "p{pct}: PreemptDB {p:.0}us should be >=5x below Wait {w:.0}us"
        );
    }
    // Cooperative's tail sits between Wait and PreemptDB (paper Fig. 10).
    let (w99, c99, p99) = (
        wait.latency_us(kinds::NEW_ORDER, 99.0),
        coop.latency_us(kinds::NEW_ORDER, 99.0),
        pre.latency_us(kinds::NEW_ORDER, 99.0),
    );
    assert!(p99 < c99 && c99 < w99, "tail ordering: {p99} < {c99} < {w99}");

    // Q2 latency under PreemptDB stays within ~15 % of Wait's.
    let wq = wait.latency_us(kinds::Q2, 99.0);
    let pq = pre.latency_us(kinds::Q2, 99.0);
    assert!(
        pq < wq * 1.15,
        "Q2 p99 unaffected by preemption: wait={wq:.0}us preempt={pq:.0}us"
    );
    // And preemption actually happened.
    assert!(pre.workers.preemptions > 50, "{}", pre.workers.preemptions);
    assert!(pre.workers.uintr_delivered > 50);
}

/// Figure 12's mechanism: under an overloading high-priority stream,
/// starvation threshold 0 restores Q2 throughput, disabled (100) starves
/// it, 0.75 lands in between — and the NewOrder tail moves the other way.
#[test]
fn starvation_prevention_trades_q2_for_neworder() {
    let run_thr = |thr: f64| {
        let sim = SimConfig::default();
        let (_e, tpcc, tpch) = setup_mixed(4, Some(small_tpcc(4)), Some(small_tpch()), 31);
        let cfg = DriverConfig {
            policy: Policy::Preemptive {
                starvation_threshold: thr,
            },
            n_workers: 4,
            shards: 1,
            queue_caps: vec![1, 100],
            batch_size: 400,
            arrival_interval: sim.us_to_cycles(1_000),
            duration: sim.ms_to_cycles(60),
            always_interrupt: false,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        run(
            Runtime::Simulated(sim),
            cfg,
            Box::new(MixedWorkload::new(tpcc, tpch, 5)),
        )
    };

    let protected = run_thr(0.0);
    let balanced = run_thr(0.75);
    let disabled = run_thr(100.0);

    let (q_protected, q_balanced, q_disabled) = (
        protected.tps(kinds::Q2),
        balanced.tps(kinds::Q2),
        disabled.tps(kinds::Q2),
    );
    assert!(
        q_protected > q_disabled * 3.0,
        "threshold 0 restores Q2: {q_protected:.0} vs disabled {q_disabled:.0}"
    );
    assert!(
        q_protected >= q_balanced && q_balanced >= q_disabled,
        "Q2 monotone in protection: {q_protected:.0} >= {q_balanced:.0} >= {q_disabled:.0}"
    );
    // The other side of the trade: protecting Q2 slows high-priority work.
    let no_protected = protected.latency_us(kinds::NEW_ORDER, 99.0);
    let no_disabled = disabled.latency_us(kinds::NEW_ORDER, 99.0);
    assert!(
        no_protected > no_disabled,
        "NewOrder tail pays for Q2 protection: {no_protected:.0}us vs {no_disabled:.0}us"
    );
    // The scheduler actually exercised decision site 1.
    assert!(protected.scheduler.skipped_starving > 0);
}

/// Figure 8's overhead claim: arming the uintr machinery on a pure OLTP
/// workload costs only a few percent.
#[test]
fn uintr_machinery_overhead_is_small() {
    use preemptdb::workloads::TpccWorkload;
    let sim = SimConfig::default();
    let mut results = Vec::new();
    for on in [false, true] {
        let (_e, tpcc, _tpch) = setup_mixed(4, Some(small_tpcc(4)), Some(small_tpch()), 3);
        let cfg = DriverConfig {
            policy: if on { Policy::preemptdb() } else { Policy::Wait },
            n_workers: 4,
            shards: 1,
            queue_caps: vec![64, 4],
            batch_size: 0,
            arrival_interval: sim.us_to_cycles(1_000),
            duration: sim.ms_to_cycles(60),
            always_interrupt: on,
            robustness: Default::default(),
            recovery: Default::default(),
            trace: None,
            metrics: None,
            prov: None,
        };
        results.push(run(
            Runtime::Simulated(sim),
            cfg,
            Box::new(TpccWorkload::new(tpcc, 9)),
        ));
    }
    let (off, on) = (&results[0], &results[1]);
    let overhead = 1.0 - on.total_tps() / off.total_tps();
    assert!(
        overhead < 0.06,
        "uintr machinery overhead {:.1}% exceeds a few percent",
        overhead * 100.0
    );
    assert!(on.scheduler.interrupts_sent > 100, "interrupts were sent");
}

/// Determinism: identical configuration twice → identical results, down
/// to tail percentiles (the virtual-time substrate's core property).
#[test]
fn simulated_runs_are_reproducible() {
    let a = run_policy(Policy::preemptdb(), 4, 40, 4);
    let b = run_policy(Policy::preemptdb(), 4, 40, 4);
    assert_eq!(a.completed(kinds::NEW_ORDER), b.completed(kinds::NEW_ORDER));
    assert_eq!(a.completed(kinds::Q2), b.completed(kinds::Q2));
    assert_eq!(a.workers.preemptions, b.workers.preemptions);
    for pct in [50.0, 99.0, 99.9] {
        assert_eq!(
            a.latency_us(kinds::NEW_ORDER, pct),
            b.latency_us(kinds::NEW_ORDER, pct)
        );
    }
}
