//! Fault-injection robustness tests: the preemptive scheduling stack must
//! survive lost, delayed, duplicated, and spurious user interrupts, forced
//! transaction aborts, and dispatch failures — deterministically.
//!
//! Faults come from a seeded [`preempt_faults::FaultPlan`] installed for
//! the duration of a simulation run ([`SimConfig::faults`]); recovery is
//! the scheduler's delivery watchdog (epoch/ack re-sends), per-request
//! deadlines, and bounded retry. The acceptance bar (ISSUE 1): with 20 %
//! of interrupts dropped and 5 % of high-priority transactions
//! force-aborted, a full preemptive run completes with zero deadlocks or
//! panics, every lost wakeup is re-delivered, and same-seed reruns produce
//! byte-identical fault traces and metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use preempt_faults::FaultPlan;
use preemptdb::sched::{
    run, DriverConfig, Policy, Request, RobustnessConfig, RunReport, Runtime, WorkOutcome,
    WorkloadFactory,
};
use preemptdb::SimConfig;
use proptest::prelude::*;

/// Long low-priority "scans" (default 2 M cycles ≈ 0.8 ms) and short
/// high-priority "points" (20 k cycles ≈ 8 µs); every point execution
/// bumps a shared counter exactly once per invocation, so double
/// executions are observable.
struct Counted {
    high_execs: Arc<AtomicU64>,
    scan_iters: u64,
}

impl Counted {
    fn new() -> (Counted, Arc<AtomicU64>) {
        Counted::with_scan_iters(2_000)
    }

    fn with_scan_iters(scan_iters: u64) -> (Counted, Arc<AtomicU64>) {
        let c = Arc::new(AtomicU64::new(0));
        (
            Counted {
                high_execs: c.clone(),
                scan_iters,
            },
            c,
        )
    }
}

impl WorkloadFactory for Counted {
    fn make_low(&mut self, now: u64) -> Option<Request> {
        let iters = self.scan_iters;
        Some(Request::new("scan", 0, now, move || {
            for _ in 0..iters {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }

    fn make_high(&mut self, now: u64) -> Option<Request> {
        let execs = self.high_execs.clone();
        Some(Request::new("point", 1, now, move || {
            execs.fetch_add(1, Ordering::Relaxed);
            for _ in 0..20 {
                preemptdb::context::runtime::preempt_point(1_000);
            }
            WorkOutcome::default()
        }))
    }
}

const N_WORKERS: usize = 4;
const HIGH_CAP: usize = 4;

fn small_cfg(policy: Policy, duration_ms: u64) -> DriverConfig {
    DriverConfig {
        policy,
        n_workers: N_WORKERS,
        shards: 1,
        queue_caps: vec![1, HIGH_CAP],
        batch_size: 8,
        arrival_interval: 2_400_000, // 1 ms of virtual time
        duration: duration_ms * 2_400_000,
        always_interrupt: false,
        robustness: RobustnessConfig::default(),
        recovery: Default::default(),
        trace: None,
        metrics: None,
        prov: None,
    }
}

fn run_with(plan: FaultPlan, cfg: DriverConfig, factory: Box<dyn WorkloadFactory>) -> RunReport {
    let sim = SimConfig {
        faults: Some(plan),
        ..SimConfig::default()
    };
    run(Runtime::Simulated(sim), cfg, factory)
}

/// Requests still sitting in queues when the run's duration expires are
/// neither completed nor aborted; they are bounded by total queue space.
const SHUTDOWN_SLACK: u64 = (N_WORKERS * HIGH_CAP) as u64;

/// 20 % interrupt drop: the run terminates (the simulator panics on
/// deadlock, so completion *is* the liveness assertion), the watchdog
/// re-delivers the lost wakeups, and every dispatched high-priority
/// request is accounted for.
#[test]
fn watchdog_survives_dropped_interrupts() {
    let plan = FaultPlan::quiet(7).with_drop_ppm(200_000);
    let (factory, execs) = Counted::new();
    let r = run_with(plan, small_cfg(Policy::preemptdb(), 40), Box::new(factory));

    let faults = r.faults.as_ref().expect("ran under a fault plan");
    assert!(faults.uipi_sends > 0, "sends were exercised");
    assert!(faults.uipi_dropped > 0, "the plan actually dropped sends");
    assert!(
        r.scheduler.watchdog_resends > 0,
        "lost wakeups were re-delivered"
    );

    let k = r.metrics.kind("point").expect("high stream ran");
    assert!(k.completed > 0);
    assert_eq!(k.completed, execs.load(Ordering::Relaxed));
    let accounted = k.completed + k.deadline_aborted + k.failed;
    assert!(
        accounted + SHUTDOWN_SLACK >= r.scheduler.dispatched_high,
        "dispatched {} but only {} accounted (+{} shutdown slack)",
        r.scheduler.dispatched_high,
        accounted,
        SHUTDOWN_SLACK
    );
}

/// Duplicated and spurious interrupts are delivery-level noise: they may
/// cause empty preemptions, but a dispatched request is executed exactly
/// once.
#[test]
fn duplicate_and_spurious_interrupts_never_double_execute() {
    let plan = FaultPlan::quiet(11)
        .with_duplicate_ppm(400_000)
        .with_spurious_ppm(300_000);
    let (factory, execs) = Counted::new();
    let r = run_with(plan, small_cfg(Policy::preemptdb(), 40), Box::new(factory));

    let faults = r.faults.as_ref().expect("ran under a fault plan");
    assert!(faults.uipi_duplicated > 0);
    assert!(faults.uipi_spurious > 0);

    let k = r.metrics.kind("point").expect("high stream ran");
    assert!(k.completed > 0);
    assert_eq!(
        execs.load(Ordering::Relaxed),
        k.completed,
        "every execution completed and nothing ran twice"
    );
}

/// Same seed ⇒ byte-identical fault trace and identical metrics, even
/// with drops, duplicates, and injected stalls in the mix.
#[test]
fn same_seed_reproduces_identical_trace_and_metrics() {
    let plan = FaultPlan::lossy(42, 150_000, 0)
        .with_duplicate_ppm(100_000)
        .with_spurious_ppm(50_000)
        .with_stall(50_000, 10_000);
    let mk = || {
        let (factory, _) = Counted::new();
        run_with(plan, small_cfg(Policy::preemptdb(), 30), Box::new(factory))
    };
    let a = mk();
    let b = mk();

    let ta = a.fault_trace.as_ref().expect("trace recorded");
    let tb = b.fault_trace.as_ref().expect("trace recorded");
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "fault traces are byte-identical");
    assert_eq!(a.faults, b.faults, "fault counters identical");
    assert_eq!(a.completed("point"), b.completed("point"));
    assert_eq!(a.completed("scan"), b.completed("scan"));
    assert_eq!(a.scheduler.watchdog_resends, b.scheduler.watchdog_resends);
    assert_eq!(a.scheduler.dispatched_high, b.scheduler.dispatched_high);
    assert_eq!(
        a.metrics.kind("point").unwrap().latency.percentile(99.0),
        b.metrics.kind("point").unwrap().latency.percentile(99.0),
    );
}

/// A tight per-request deadline under the non-preemptive Wait policy:
/// points stranded behind ~1.7 ms scans (longer than the 1 ms batch
/// interval, so workers are always mid-scan when a batch lands) blow
/// their 100 µs budget and are recorded as deadline aborts instead of
/// executing late (or hanging).
#[test]
fn deadlines_abort_stranded_requests() {
    let mut cfg = small_cfg(Policy::Wait, 40);
    cfg.robustness.high_deadline = Some(240_000); // 100 µs
    let (factory, execs) = Counted::with_scan_iters(4_000);
    let r = run_with(FaultPlan::quiet(3), cfg, Box::new(factory));

    let k = r.metrics.kind("point").expect("high stream ran");
    assert!(
        k.deadline_aborted > 0,
        "some points must miss a 100 µs deadline behind 1.7 ms scans"
    );
    assert_eq!(
        k.completed,
        execs.load(Ordering::Relaxed),
        "deadline-aborted requests were never executed"
    );
    let accounted = k.completed + k.deadline_aborted + k.failed;
    assert!(accounted + SHUTDOWN_SLACK >= r.scheduler.dispatched_high);
}

/// Uncommitted outcomes are retried with backoff up to the budget; a
/// request that keeps failing is recorded as failed, never as completed,
/// and the retry count is preserved.
#[test]
fn retry_budget_bounds_reexecution() {
    struct FlakyHigh {
        attempts: Arc<AtomicU64>,
    }
    impl WorkloadFactory for FlakyHigh {
        fn make_low(&mut self, _now: u64) -> Option<Request> {
            None
        }
        fn make_high(&mut self, now: u64) -> Option<Request> {
            let attempts = self.attempts.clone();
            Some(Request::new("flaky", 1, now, move || {
                attempts.fetch_add(1, Ordering::Relaxed);
                preemptdb::context::runtime::preempt_point(1_000);
                WorkOutcome::failed(0) // never commits
            }))
        }
    }
    let attempts = Arc::new(AtomicU64::new(0));
    let mut cfg = small_cfg(Policy::preemptdb(), 10);
    cfg.batch_size = 2;
    cfg.robustness.max_retries = 3;
    let r = run_with(
        FaultPlan::quiet(5),
        cfg,
        Box::new(FlakyHigh {
            attempts: attempts.clone(),
        }),
    );

    let k = r.metrics.kind("flaky").expect("flaky stream ran");
    assert_eq!(k.completed, 0, "a never-committing request cannot complete");
    assert!(k.failed > 0, "budget exhaustion is recorded");
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        k.failed * 4,
        "each failed request ran exactly 1 + max_retries times"
    );
}

/// The acceptance scenario: the paper's mixed workload (TPC-H Q2 low,
/// TPC-C high) through the real MVCC engine under a plan that drops 20 %
/// of interrupts and force-aborts 5 % of commits. The run must finish
/// with transactions committed on both streams and forced aborts absorbed
/// by the engine-level retry loops.
#[test]
fn mixed_workload_survives_lossy_plan() {
    use preemptdb::workloads::{setup_mixed, MixedWorkload, TpccScale, TpchScale};
    let (_engine, tpcc, tpch) =
        setup_mixed(1, Some(TpccScale::tiny()), Some(TpchScale::tiny()), 5);
    let factory = MixedWorkload::new(tpcc, tpch, 9);

    let plan = FaultPlan::lossy(13, 200_000, 50_000);
    let mut cfg = small_cfg(Policy::preemptdb(), 30);
    cfg.n_workers = 2;
    let r = run_with(plan, cfg, Box::new(factory));

    let faults = r.faults.as_ref().expect("ran under a fault plan");
    assert!(faults.uipi_dropped > 0, "interrupts were dropped");
    assert!(faults.forced_aborts > 0, "commits were force-aborted");
    assert!(
        r.metrics.kind("q2").map(|k| k.completed).unwrap_or(0) > 0,
        "low-priority analytics still complete"
    );
    let high: u64 = ["neworder", "payment"]
        .iter()
        .filter_map(|k| r.metrics.kind(k))
        .map(|k| k.completed)
        .sum();
    assert!(high > 0, "high-priority OLTP still completes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Liveness + exactly-once hold for arbitrary seeds under a mixed
    /// drop/duplicate/spurious plan (the simulator panics on deadlock, so
    /// merely finishing is the liveness half).
    #[test]
    fn no_deadlock_or_double_execution_for_any_seed(seed in 0u64..u64::MAX / 2) {
        let plan = FaultPlan::quiet(seed)
            .with_drop_ppm(200_000)
            .with_duplicate_ppm(50_000)
            .with_spurious_ppm(50_000);
        let (factory, execs) = Counted::new();
        let r = run_with(plan, small_cfg(Policy::preemptdb(), 15), Box::new(factory));

        let k = r.metrics.kind("point").expect("high stream ran");
        prop_assert!(k.completed > 0, "progress despite faults");
        prop_assert_eq!(k.completed, execs.load(Ordering::Relaxed));
        let accounted = k.completed + k.deadline_aborted + k.failed;
        prop_assert!(accounted + SHUTDOWN_SLACK >= r.scheduler.dispatched_high);
    }
}
