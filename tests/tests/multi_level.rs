//! The paper's multi-priority-level extension (§5 Discussions): "one may
//! easily extend PreemptDB to support more fine-grained priority levels
//! by using multiple contexts/TCBs. A high-priority transaction that has
//! already interrupted a previous lower-priority transaction could then
//! be interrupted again."
//!
//! The worker supports N levels (one preemptive context per level); these
//! tests exercise three levels with *nested* preemption.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use preemptdb::context::runtime::preempt_point;
use preemptdb::sched::{worker_main, Policy, Request, WakeTarget, WorkOutcome, WorkerShared};
use preemptdb::sim::{SimConfig, SimUipiSender, Simulation};

fn nested_scenario(send_urgent: bool) -> (Vec<u64>, Arc<WorkerShared>) {
    // completion stamps: [low, mid, urgent]
    let stamps: Arc<[AtomicU64; 3]> = Arc::new(Default::default());
    let sim = Simulation::new(SimConfig::default());
    // Three priority levels: low (0), mid (1), urgent (2).
    let shared = WorkerShared::new(0, &[1, 4, 4]);

    let ws = shared.clone();
    let core = sim.spawn_core("worker", 256 * 1024, move || {
        worker_main(ws, Policy::preemptdb());
    });
    shared.set_wake_target(WakeTarget::Sim(core));

    let ws = shared.clone();
    let st = stamps.clone();
    sim.spawn_core("sched", 128 * 1024, move || {
        // Low: a 20 M cycle (~8 ms) scan.
        let s = st.clone();
        ws.queues[0]
            .push(Request::new("low", 0, 0, move || {
                for _ in 0..20_000 {
                    preempt_point(1_000);
                }
                s[0].store(preempt_sim_now(), Ordering::Relaxed);
                WorkOutcome::default()
            }))
            .ok();
        ws.wake();

        // At 1 ms: a mid-priority 5 M cycle (~2 ms) transaction.
        preemptdb::sim::api::sleep_until(2_400_000);
        let s = st.clone();
        ws.queues[1]
            .push(Request::new("mid", 1, 2_400_000, move || {
                for _ in 0..5_000 {
                    preempt_point(1_000);
                }
                s[1].store(preempt_sim_now(), Ordering::Relaxed);
                WorkOutcome::default()
            }))
            .ok();
        SimUipiSender::new(ws.upid().unwrap(), 1, core).send();

        if send_urgent {
            // At 2 ms — while the mid txn runs — an urgent 50 k cycle
            // (~20 µs) transaction that must preempt the *mid* one.
            preemptdb::sim::api::sleep_until(4_800_000);
            let s = st.clone();
            ws.queues[2]
                .push(Request::new("urgent", 2, 4_800_000, move || {
                    for _ in 0..50 {
                        preempt_point(1_000);
                    }
                    s[2].store(preempt_sim_now(), Ordering::Relaxed);
                    WorkOutcome::default()
                }))
                .ok();
            SimUipiSender::new(ws.upid().unwrap(), 2, core).send();
        }

        preemptdb::sim::api::sleep_until(80_000_000);
        ws.stop();
    });

    sim.run();
    let v = stamps.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    (v, shared)
}

fn preempt_sim_now() -> u64 {
    preemptdb::sim::api::now_cycles()
}

#[test]
fn urgent_preempts_mid_which_preempted_low() {
    let (stamps, shared) = nested_scenario(true);
    let (low, mid, urgent) = (stamps[0], stamps[1], stamps[2]);
    assert!(low > 0 && mid > 0 && urgent > 0, "all completed: {stamps:?}");

    // Nesting order: urgent finishes first (inside mid), mid second
    // (inside low), low last.
    assert!(urgent < mid, "urgent ({urgent}) inside mid ({mid})");
    assert!(mid < low, "mid ({mid}) inside low ({low})");

    // The urgent txn completed promptly after its 2 ms dispatch: delivery
    // + switch + ~20 µs of work, not after the mid txn's ~2 ms remainder.
    assert!(
        urgent < 4_800_000 + 200_000,
        "urgent done at {urgent}, dispatched at 4.8M"
    );
    // Two passive switches: into level 1, then nested into level 2.
    assert_eq!(shared.preemptions.load(Ordering::Relaxed), 2);

    // All three metrics kinds recorded.
    let m = shared.metrics.lock();
    for kind in ["low", "mid", "urgent"] {
        assert_eq!(m.kind(kind).unwrap().completed, 1, "{kind}");
    }
}

#[test]
fn two_level_baseline_without_urgent() {
    let (stamps, shared) = nested_scenario(false);
    assert!(stamps[0] > 0 && stamps[1] > 0);
    assert_eq!(stamps[2], 0);
    assert!(stamps[1] < stamps[0], "mid preempted low");
    assert_eq!(shared.preemptions.load(Ordering::Relaxed), 1);
}

/// A lower-priority interrupt must NOT preempt a higher-priority
/// transaction (the §4.1 rule, generalized across levels).
#[test]
fn lower_priority_never_interrupts_higher() {
    let done_at: Arc<[AtomicU64; 2]> = Arc::new(Default::default());
    let sim = Simulation::new(SimConfig::default());
    let shared = WorkerShared::new(0, &[1, 4, 4]);

    let ws = shared.clone();
    let core = sim.spawn_core("worker", 256 * 1024, move || {
        worker_main(ws, Policy::preemptdb());
    });
    shared.set_wake_target(WakeTarget::Sim(core));

    let ws = shared.clone();
    let st = done_at.clone();
    sim.spawn_core("sched", 128 * 1024, move || {
        // An urgent (level 2) long-ish transaction starts first.
        let s = st.clone();
        ws.queues[2]
            .push(Request::new("urgent", 2, 0, move || {
                for _ in 0..5_000 {
                    preempt_point(1_000);
                }
                s[0].store(preemptdb::sim::api::now_cycles(), Ordering::Relaxed);
                WorkOutcome::default()
            }))
            .ok();
        SimUipiSender::new(ws.upid().unwrap(), 2, core).send();
        ws.wake();

        // Mid-run, a level-1 transaction arrives with an interrupt.
        preemptdb::sim::api::sleep_until(1_200_000);
        let s = st.clone();
        ws.queues[1]
            .push(Request::new("mid", 1, 1_200_000, move || {
                preempt_point(10_000);
                s[1].store(preemptdb::sim::api::now_cycles(), Ordering::Relaxed);
                WorkOutcome::default()
            }))
            .ok();
        SimUipiSender::new(ws.upid().unwrap(), 1, core).send();

        preemptdb::sim::api::sleep_until(40_000_000);
        ws.stop();
    });
    sim.run();

    let urgent_done = done_at[0].load(Ordering::Relaxed);
    let mid_done = done_at[1].load(Ordering::Relaxed);
    assert!(urgent_done > 0 && mid_done > 0);
    assert!(
        mid_done > urgent_done,
        "mid ({mid_done}) must wait for urgent ({urgent_done})"
    );
}

/// Dynamic priority adjustment (paper §5): a transaction that keeps
/// aborting gets promoted to the preemptive path.
#[test]
fn repeated_aborts_boost_priority() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use preemptdb::{Database, DatabaseConfig, TxError};

    let db = Database::open(DatabaseConfig::default().workers(2));
    let attempts = Arc::new(AtomicU64::new(0));
    let a = attempts.clone();
    let (value, retries, boosted) = db.call_with_boost("hot-update", 3, move || {
        // Fail the first 5 attempts, then succeed.
        if a.fetch_add(1, Ordering::Relaxed) < 5 {
            Err(TxError::WriteConflict)
        } else {
            Ok(42u32)
        }
    });
    assert_eq!(value, 42);
    assert_eq!(retries, 5);
    assert!(boosted, "attempts beyond the threshold ran boosted");
    let m = db.shutdown();
    assert_eq!(m.kind("hot-update").unwrap().completed, 6, "6 dispatches");
}

#[test]
fn no_boost_when_it_succeeds_early() {
    use preemptdb::{Database, DatabaseConfig};

    let db = Database::open(DatabaseConfig::default().workers(1));
    let (v, retries, boosted) = db.call_with_boost("easy", 3, || Ok(7u8));
    assert_eq!((v, retries, boosted), (7, 0, false));
    db.shutdown();
}
