//! Integration tests live in `tests/tests/`; this library is empty.
